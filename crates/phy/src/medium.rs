//! The shared radio medium.
//!
//! [`Medium`] tracks every in-flight transmission and decides, per receiver,
//! whether each packet is received cleanly under the paper's rule:
//!
//! > "the designated receiving station can correctly receive the packet if
//! > the signal strength is greater than some threshold (the signal strength
//! > at 10 feet) and is greater than the sum of the other signals by at least
//! > 10 dB during the entire packet transmission time."
//!
//! We apply the same rule to *every* in-range station, not just the
//! designated receiver, because overhearing control packets (RTS/CTS/DS/RRTS)
//! is what drives deferral in MACA and MACAW.
//!
//! # Mechanics
//!
//! Interference is piecewise-constant between transmission start/end events,
//! so the "entire packet time" condition is enforced incrementally: every
//! in-flight `(transmission, receiver)` pair carries a `clean` flag that is
//! knocked false the moment any overlapping event (a new transmission, the
//! receiver keying up, the receiver moving) violates the capture margin.
//! Interference *decreasing* (a transmission ending) can never un-violate the
//! condition, so no re-check is needed on end events.
//!
//! The medium owns no event queue. The caller keys a station up with
//! [`Medium::start_tx`], schedules the end-of-frame event itself, and calls
//! [`Medium::end_tx`] when that event fires, receiving the delivery verdicts.
//!
//! # Signal caches
//!
//! Station geometry changes rarely (registration, mobility, power changes)
//! while signal queries happen on every carrier-sense poll and every
//! transmission start/end, so all pairwise signal quantities are precomputed
//! and kept incrementally up to date:
//!
//! * `gain[a][b]` — path gain `power_at_distance(d(a,b))`; `int_gain[a][b]`
//!   — the same with the interference cutoff applied; `range[a][b]` — the
//!   in-range predicate. All symmetric, rebuilt only for the affected rows
//!   on [`Medium::set_position`] / [`Medium::add_station`].
//! * `audible[src]` — ascending list of stations that can receive `src`'s
//!   transmissions at its current power (`tx_power · gain ≥ threshold`);
//!   rebuilt on position and power changes. [`Medium::start_tx`] opens
//!   receptions by walking this list instead of scanning every station.
//! * `ambient[b]` — summed spatial-noise power at each station, rebuilt when
//!   noise sources are added or toggled; `incident[b]` — `ambient[b]` plus
//!   the summed interference power of *all* active transmissions at `b`,
//!   maintained by appending on `start_tx` and rebuilt on `end_tx` and
//!   geometry changes.
//!
//! Every cached value is produced by the *same* floating-point operations on
//! the same inputs as the naive implementation
//! ([`ReferenceMedium`](crate::reference::ReferenceMedium)), so results are
//! bit-identical, not merely approximately equal. Two details matter for
//! that guarantee:
//!
//! * **Fold order.** IEEE-754 addition is not associative, so `incident[b]`
//!   must be the exact left-to-right fold `ambient + c₁ + c₂ + …` in
//!   active-list order that the reference computes per query. Appending a
//!   new transmission's contribution preserves that fold; *removing* one
//!   would not (`(a+b)−b ≠ a` in general), so `end_tx` rebuilds the sums
//!   from scratch in the post-removal list order instead of subtracting.
//! * **Exclusions.** Queries that exclude a specific transmission
//!   (`interference_at`) cannot be answered from the running sum exactly,
//!   and fall back to an O(active) fold over cached gains. The running sum
//!   answers the common exclusion-free cases: carrier sense at an idle
//!   station, and the interference seen by a not-currently-transmitting
//!   receiver when a new transmission opens (the new transmission is the
//!   *last* active entry, so "all but it" is exactly the pre-append sum).
//!
//! Debug builds re-derive each fast-path answer the slow way and assert
//! bit-equality, so the unit suite exercises the equivalence on every query.

use macaw_sim::{SimRng, SimTime};

use crate::geometry::{cube_center, Point};
use crate::propagation::Propagation;

/// Index of a station registered with the medium.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct StationId(pub usize);

/// Handle to an in-flight transmission.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TxId(pub(crate) u64);

impl TxId {
    pub(crate) fn from_raw(raw: u64) -> TxId {
        TxId(raw)
    }
}

/// Verdict for one station at the end of a transmission.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Delivery {
    /// The station that (potentially) heard the packet.
    pub station: StationId,
    /// `true` iff the packet was received cleanly (threshold + capture
    /// margin held for the whole flight, station never keyed up, and the
    /// per-packet noise draw passed).
    pub clean: bool,
    /// Received signal power (normalized units), for diagnostics.
    pub signal: f64,
}

struct StationEntry {
    pos: Point,
    transmitting: Option<TxId>,
    /// Per-packet probability that a packet arriving at this station is
    /// corrupted by intermittent noise (§3.3.1's model).
    rx_error_rate: f64,
    /// Transmit power multiplier. The paper's stations all transmit at the
    /// same strength (1.0); §4 discusses — and declines — power variation
    /// because it breaks the symmetry the CTS mechanism depends on. The
    /// knob exists so that consequence can be demonstrated.
    tx_power: f64,
}

struct ActiveTx {
    id: TxId,
    source: StationId,
    start: SimTime,
}

struct Reception {
    tx: TxId,
    rx: StationId,
    signal: f64,
    clean: bool,
}

/// A fixed continuous noise emitter (e.g. the paper's electronic whiteboard,
/// when modelled spatially rather than as a packet error rate).
struct NoiseSource {
    pos: Point,
    power: f64,
    active: bool,
}

/// The shared single-channel radio medium.
pub struct Medium {
    prop: Propagation,
    stations: Vec<StationEntry>,
    active: Vec<ActiveTx>,
    receptions: Vec<Reception>,
    noise: Vec<NoiseSource>,
    rng: SimRng,
    next_tx: u64,
    /// `gain[a][b]` = `power_at_distance(d(a,b))` (symmetric).
    gain: Vec<Vec<f64>>,
    /// Per-direction link gain multiplier (`link[src][dst]`, default 1.0).
    /// Models link asymmetry faults: an obstruction or fade that attenuates
    /// `src`'s signal *at `dst`* without affecting the reverse direction.
    /// Applied as `tx_power · link · gain` everywhere a signal or
    /// interference power is formed; multiplying by the default 1.0 is an
    /// exact identity, so an all-ones matrix is bit-identical to no matrix.
    link: Vec<Vec<f64>>,
    /// `int_gain[a][b]` = `interference_power(d(a,b))` (symmetric).
    int_gain: Vec<Vec<f64>>,
    /// `range[a][b]` = `prop.in_range(d(a,b))` (symmetric).
    range: Vec<Vec<bool>>,
    /// Ascending station indices with `tx_power[src] * gain[src][b]` at or
    /// above the reception threshold — who hears `src` transmit.
    audible: Vec<Vec<usize>>,
    /// `noise_gain[n][b]` = `interference_power(d(noise n, station b))`.
    noise_gain: Vec<Vec<f64>>,
    /// Summed active spatial-noise power at each station, in noise order.
    ambient: Vec<f64>,
    /// `ambient[b]` plus every active transmission's interference power at
    /// `b`, folded in active-list order (see module docs).
    incident: Vec<f64>,
}

impl Medium {
    /// Create a medium with the given propagation model and RNG stream
    /// (used only for per-packet noise draws).
    pub fn new(prop: Propagation, rng: SimRng) -> Self {
        Medium {
            prop,
            stations: Vec::new(),
            active: Vec::new(),
            receptions: Vec::new(),
            noise: Vec::new(),
            rng,
            next_tx: 0,
            gain: Vec::new(),
            link: Vec::new(),
            int_gain: Vec::new(),
            range: Vec::new(),
            audible: Vec::new(),
            noise_gain: Vec::new(),
            ambient: Vec::new(),
            incident: Vec::new(),
        }
    }

    /// The propagation model in use.
    pub fn propagation(&self) -> &Propagation {
        &self.prop
    }

    /// Register a station; its position is snapped to the nearest cube
    /// center (stations "reside at the center of a cube").
    pub fn add_station(&mut self, pos: Point) -> StationId {
        let idx = self.stations.len();
        let id = StationId(idx);
        self.stations.push(StationEntry {
            pos: cube_center(pos),
            transmitting: None,
            rx_error_rate: 0.0,
            tx_power: 1.0,
        });
        let pos = self.stations[idx].pos;

        // Grow the pairwise matrices by one row and one column.
        let mut gain_row = Vec::with_capacity(idx + 1);
        let mut int_row = Vec::with_capacity(idx + 1);
        let mut range_row = Vec::with_capacity(idx + 1);
        for (other_idx, other) in self.stations.iter().enumerate() {
            let d = pos.distance(other.pos);
            let g = self.prop.power_at_distance(d);
            let ig = self.prop.interference_power(d);
            let r = self.prop.in_range(d);
            if other_idx < idx {
                self.gain[other_idx].push(g);
                self.link[other_idx].push(1.0);
                self.int_gain[other_idx].push(ig);
                self.range[other_idx].push(r);
            }
            gain_row.push(g);
            int_row.push(ig);
            range_row.push(r);
        }
        self.gain.push(gain_row);
        self.link.push(vec![1.0; idx + 1]);
        self.int_gain.push(int_row);
        self.range.push(range_row);

        // Audibility: the new station may hear others and be heard by them.
        for src in 0..idx {
            if self.stations[src].tx_power * self.link[src][idx] * self.gain[src][idx]
                >= self.prop.threshold_power()
            {
                self.audible[src].push(idx); // largest index: stays ascending
            }
        }
        self.audible.push(Vec::new());
        self.rebuild_audible(idx);

        for (n, src) in self.noise.iter().enumerate() {
            self.noise_gain[n].push(self.prop.interference_power(src.pos.distance(pos)));
        }
        self.ambient.push(0.0);
        self.rebuild_ambient_of(idx);
        self.incident.push(0.0);
        self.rebuild_incident_of(idx);
        id
    }

    /// Number of registered stations.
    pub fn station_count(&self) -> usize {
        self.stations.len()
    }

    /// Current (cube-snapped) position of a station.
    pub fn position(&self, id: StationId) -> Point {
        self.stations[id.0].pos
    }

    /// Set the per-packet noise corruption probability for packets received
    /// at `id`.
    pub fn set_rx_error_rate(&mut self, id: StationId, p: f64) {
        assert!((0.0..=1.0).contains(&p), "error rate must be in [0,1]");
        self.stations[id.0].rx_error_rate = p;
    }

    /// Set a station's transmit power multiplier (default 1.0). §4 declines
    /// power variation because it breaks radio symmetry — with unequal
    /// powers, "A hears B" no longer implies "B hears A" and the CTS can no
    /// longer silence every potential collider.
    pub fn set_tx_power(&mut self, id: StationId, power: f64) {
        assert!(power > 0.0 && power.is_finite(), "power must be positive");
        self.stations[id.0].tx_power = power;
        self.rebuild_audible(id.0);
        // If `id` is mid-transmission its interference contribution changed.
        if self.stations[id.0].transmitting.is_some() {
            self.rebuild_incident();
        }
    }

    /// `true` iff a transmission by `from` is receivable at `to`
    /// (directional once transmit powers or link gains differ).
    pub fn hears(&self, to: StationId, from: StationId) -> bool {
        self.stations[from.0].tx_power * self.link[from.0][to.0] * self.gain[from.0][to.0]
            >= self.prop.threshold_power()
    }

    /// Set the directional gain multiplier on the `src → dst` link (default
    /// 1.0; the reverse direction is untouched). Models link-asymmetry
    /// faults — §4 notes unequal link budgets break the symmetry the CTS
    /// mechanism depends on. A packet from `src` in flight *to `dst`* when
    /// the factor changes is conservatively lost (the link faded
    /// mid-packet), and all other in-flight receptions are re-checked
    /// against the changed interference geometry.
    pub fn set_link_gain(&mut self, src: StationId, dst: StationId, factor: f64) {
        assert!(
            factor >= 0.0 && factor.is_finite(),
            "link gain must be finite and non-negative"
        );
        assert_ne!(src, dst, "link gain applies to a pair of distinct stations");
        self.link[src.0][dst.0] = factor;
        if let Some(tx) = self.stations[src.0].transmitting {
            for r in &mut self.receptions {
                if r.tx == tx && r.rx == dst {
                    r.clean = false;
                }
            }
        }
        // Only `dst`'s membership in `audible[src]` can have flipped.
        let qualifies = self.stations[src.0].tx_power
            * self.link[src.0][dst.0]
            * self.gain[src.0][dst.0]
            >= self.prop.threshold_power();
        let list = &mut self.audible[src.0];
        match list.binary_search(&dst.0) {
            Ok(at) if !qualifies => {
                list.remove(at);
            }
            Err(at) if qualifies => {
                list.insert(at, dst.0);
            }
            _ => {}
        }
        if self.stations[src.0].transmitting.is_some() {
            // `src`'s interference contribution at `dst` changed.
            self.rebuild_incident();
        }
        self.recheck_all_receptions();
    }

    /// The current directional gain multiplier on the `src → dst` link.
    pub fn link_gain(&self, src: StationId, dst: StationId) -> f64 {
        self.link[src.0][dst.0]
    }

    /// Add a continuous spatial noise emitter. Returns an index usable with
    /// [`Medium::set_noise_active`].
    pub fn add_noise_source(&mut self, pos: Point, power: f64) -> usize {
        let pos = cube_center(pos);
        self.noise.push(NoiseSource {
            pos,
            power,
            active: true,
        });
        self.noise_gain.push(
            self.stations
                .iter()
                .map(|st| self.prop.interference_power(pos.distance(st.pos)))
                .collect(),
        );
        self.rebuild_ambient();
        self.rebuild_incident();
        self.noise.len() - 1
    }

    /// Enable or disable a spatial noise emitter. Turning one **on**
    /// invalidates any in-flight reception it now drowns out.
    pub fn set_noise_active(&mut self, index: usize, active: bool) {
        self.noise[index].active = active;
        self.rebuild_ambient();
        self.rebuild_incident();
        if active {
            self.recheck_all_receptions();
        }
    }

    /// Move a station (mobility). Any packet in flight to or from a moving
    /// station is corrupted (the paper's pads move between packets; this is
    /// a conservative rule for the general case), and all other in-flight
    /// receptions are re-checked against the new interference geometry.
    pub fn set_position(&mut self, id: StationId, pos: Point) {
        self.stations[id.0].pos = cube_center(pos);
        let moving_tx = self.stations[id.0].transmitting;
        for r in &mut self.receptions {
            if r.rx == id || Some(r.tx) == moving_tx {
                r.clean = false;
            }
        }

        // Refresh every cache touching the moved station.
        let moved = id.0;
        let pos = self.stations[moved].pos;
        for other in 0..self.stations.len() {
            let d = pos.distance(self.stations[other].pos);
            let g = self.prop.power_at_distance(d);
            let ig = self.prop.interference_power(d);
            let r = self.prop.in_range(d);
            self.gain[moved][other] = g;
            self.gain[other][moved] = g;
            self.int_gain[moved][other] = ig;
            self.int_gain[other][moved] = ig;
            self.range[moved][other] = r;
            self.range[other][moved] = r;
        }
        for (n, src) in self.noise.iter().enumerate() {
            self.noise_gain[n][moved] = self.prop.interference_power(src.pos.distance(pos));
        }
        self.rebuild_audible(moved);
        for src in 0..self.stations.len() {
            if src == moved {
                continue;
            }
            // Membership of the moved station in everyone else's audible
            // list may have flipped; the cheap fix beats a full rebuild.
            let qualifies = self.stations[src].tx_power
                * self.link[src][moved]
                * self.gain[src][moved]
                >= self.prop.threshold_power();
            let list = &mut self.audible[src];
            match list.binary_search(&moved) {
                Ok(at) if !qualifies => {
                    list.remove(at);
                }
                Err(at) if qualifies => {
                    list.insert(at, moved);
                }
                _ => {}
            }
        }
        self.rebuild_ambient_of(moved);
        self.rebuild_incident();

        self.recheck_all_receptions();
    }

    /// `true` iff stations `a` and `b` are within reception range.
    pub fn in_range(&self, a: StationId, b: StationId) -> bool {
        self.range[a.0][b.0]
    }

    /// `true` iff station `id` is currently transmitting.
    pub fn is_transmitting(&self, id: StationId) -> bool {
        self.stations[id.0].transmitting.is_some()
    }

    /// Carrier sense at station `id`: `true` iff the summed power of all
    /// other active transmissions (plus spatial noise) at `id` exceeds the
    /// reception threshold.
    pub fn carrier_busy(&self, id: StationId) -> bool {
        if self.stations[id.0].transmitting.is_none() {
            // No exclusions apply, so the running sum answers in O(1).
            debug_assert_eq!(
                self.incident[id.0].to_bits(),
                self.fold_incident(id.0).to_bits(),
                "running incident sum diverged from the reference fold"
            );
            return self.incident[id.0] >= self.prop.threshold_power();
        }
        let mut power = self.ambient[id.0];
        for tx in &self.active {
            if tx.source == id {
                continue;
            }
            power += self.stations[tx.source.0].tx_power
                * self.link[tx.source.0][id.0]
                * self.int_gain[tx.source.0][id.0];
        }
        power >= self.prop.threshold_power()
    }

    /// Number of transmissions currently in flight.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Key station `source` up at time `now`. The caller must schedule the
    /// end-of-frame event and call [`Medium::end_tx`] when it fires.
    ///
    /// # Panics
    /// Panics if the station is already transmitting (the MAC layer must
    /// serialize its own transmissions).
    pub fn start_tx(&mut self, source: StationId, now: SimTime) -> TxId {
        assert!(
            self.stations[source.0].transmitting.is_none(),
            "station {source:?} is already transmitting"
        );
        let id = TxId(self.next_tx);
        self.next_tx += 1;
        self.stations[source.0].transmitting = Some(id);

        // Half-duplex: anything in flight *to* the new transmitter is lost.
        for r in &mut self.receptions {
            if r.rx == source {
                r.clean = false;
            }
        }

        self.active.push(ActiveTx {
            id,
            source,
            start: now,
        });

        // The new signal may drown existing receptions elsewhere. The new
        // transmission is already in `active`, so `interference_at` sees it.
        let tx_power = self.stations[source.0].tx_power;
        for i in 0..self.receptions.len() {
            let rx = self.receptions[i].rx;
            if !self.receptions[i].clean || rx == source {
                continue;
            }
            let added = tx_power * self.link[source.0][rx.0] * self.int_gain[source.0][rx.0];
            if added > 0.0 {
                let interference = self.interference_at(rx, self.receptions[i].tx);
                let signal = self.receptions[i].signal;
                if !self.prop.clean(signal, interference) {
                    self.receptions[i].clean = false;
                }
            }
        }

        // Open a reception record at every station that can hear `source`.
        // `audible[source]` is exactly the set passing the reference's
        // signal-threshold check, in the same ascending-index order.
        for li in 0..self.audible[source.0].len() {
            let idx = self.audible[source.0][li];
            let rx = StationId(idx);
            let signal = tx_power * self.link[source.0][idx] * self.gain[source.0][idx];
            debug_assert!(signal >= self.prop.threshold_power());
            let clean = self.stations[idx].transmitting.is_none() && {
                // The new transmission is the last active entry, so the
                // interference excluding it is the pre-append running sum.
                debug_assert_eq!(
                    self.incident[idx].to_bits(),
                    self.interference_at(rx, id).to_bits(),
                    "running incident sum diverged from the reference fold"
                );
                let interference = self.incident[idx];
                self.prop.clean(signal, interference)
            };
            self.receptions.push(Reception {
                tx: id,
                rx,
                signal,
                clean,
            });
        }

        // Append the new transmission's contribution to the running sums
        // (kept for *all* stations: the cutoff set can be wider or narrower
        // than the audible set once transmit powers differ from 1).
        for b in 0..self.stations.len() {
            self.incident[b] += tx_power * self.link[source.0][b] * self.int_gain[source.0][b];
        }
        id
    }

    /// Finish transmission `tx` at time `now`, returning one delivery per
    /// in-range station (in station order, for determinism).
    ///
    /// Allocates a fresh `Vec` per call; event loops should prefer
    /// [`Medium::end_tx_into`] and reuse one buffer.
    ///
    /// # Panics
    /// Panics if `tx` is not in flight.
    pub fn end_tx(&mut self, tx: TxId, now: SimTime) -> Vec<Delivery> {
        let mut out = Vec::new();
        self.end_tx_into(tx, now, &mut out);
        out
    }

    /// Finish transmission `tx` at time `now`, writing one delivery per
    /// in-range station (in station order) into `out`, which is cleared
    /// first. Reuses `out`'s capacity and compacts the internal reception
    /// list in place, so steady-state event processing allocates nothing.
    ///
    /// # Panics
    /// Panics if `tx` is not in flight.
    pub fn end_tx_into(&mut self, tx: TxId, _now: SimTime, out: &mut Vec<Delivery>) {
        let idx = self
            .active
            .iter()
            .position(|t| t.id == tx)
            .expect("end_tx: transmission not in flight");
        let source = self.active[idx].source;
        self.active.swap_remove(idx);
        debug_assert_eq!(self.stations[source.0].transmitting, Some(tx));
        self.stations[source.0].transmitting = None;

        // Extract this transmission's receptions and compact the rest in
        // place, preserving their relative order.
        out.clear();
        let mut write = 0;
        for read in 0..self.receptions.len() {
            let r = &self.receptions[read];
            if r.tx == tx {
                out.push(Delivery {
                    station: r.rx,
                    clean: r.clean,
                    signal: r.signal,
                });
            } else {
                self.receptions.swap(write, read);
                write += 1;
            }
        }
        self.receptions.truncate(write);
        // Already in ascending station order: `start_tx` opens this
        // transmission's receptions by walking the ascending `audible` list,
        // and the in-place compaction above preserves relative order.
        debug_assert!(out.windows(2).all(|w| w[0].station < w[1].station));

        // The swap-remove above reordered the active list, so the running
        // sums are rebuilt in the new fold order rather than subtracted
        // (subtraction would drift from the reference; see module docs).
        self.rebuild_incident();

        // Per-packet intermittent noise (§3.3.1): each packet is corrupted
        // at a receiving station with that station's error probability.
        for d in out.iter_mut() {
            let rate = self.stations[d.station.0].rx_error_rate;
            if d.clean && rate > 0.0 && self.rng.chance(rate) {
                d.clean = false;
            }
        }
    }

    /// Time at which transmission `tx` started, if still in flight.
    pub fn tx_start(&self, tx: TxId) -> Option<SimTime> {
        self.active.iter().find(|t| t.id == tx).map(|t| t.start)
    }

    /// Summed interference power at station `rx` from all active
    /// transmissions except `except`, plus spatial noise.
    fn interference_at(&self, rx: StationId, except: TxId) -> f64 {
        let mut power = self.ambient[rx.0];
        for t in &self.active {
            if t.id == except || t.source == rx {
                continue;
            }
            power += self.stations[t.source.0].tx_power
                * self.link[t.source.0][rx.0]
                * self.int_gain[t.source.0][rx.0];
        }
        power
    }

    /// The station transmitting `tx`, if it is still in flight. Lets
    /// wrappers ([`crate::chaos::ChaosMedium`]) attribute deliveries to a
    /// link before ending the transmission.
    pub fn tx_source(&self, tx: TxId) -> Option<StationId> {
        self.active.iter().find(|t| t.id == tx).map(|t| t.source)
    }

    /// The reference fold for `incident[b]`: ambient noise plus every active
    /// transmission in list order. Used to (re)build the running sums and,
    /// in debug builds, to check them.
    fn fold_incident(&self, b: usize) -> f64 {
        let mut power = self.ambient[b];
        for t in &self.active {
            power += self.stations[t.source.0].tx_power
                * self.link[t.source.0][b]
                * self.int_gain[t.source.0][b];
        }
        power
    }

    fn rebuild_incident(&mut self) {
        for b in 0..self.stations.len() {
            self.incident[b] = self.fold_incident(b);
        }
    }

    fn rebuild_incident_of(&mut self, b: usize) {
        self.incident[b] = self.fold_incident(b);
    }

    /// Recompute `ambient[b]` with the same filtered fold (noise-list order,
    /// inactive sources skipped) the reference uses per query.
    fn rebuild_ambient_of(&mut self, b: usize) {
        self.ambient[b] = self
            .noise
            .iter()
            .enumerate()
            .filter(|(_, n)| n.active)
            .map(|(ni, n)| n.power * self.noise_gain[ni][b])
            .sum();
    }

    fn rebuild_ambient(&mut self) {
        for b in 0..self.stations.len() {
            self.rebuild_ambient_of(b);
        }
    }

    fn rebuild_audible(&mut self, src: usize) {
        let power = self.stations[src].tx_power;
        let threshold = self.prop.threshold_power();
        let gain = &self.gain[src];
        let link = &self.link[src];
        let list = &mut self.audible[src];
        list.clear();
        list.extend(
            (0..self.stations.len())
                .filter(|&b| b != src && power * link[b] * gain[b] >= threshold),
        );
    }

    /// Re-validate every in-flight reception against the current geometry
    /// and interference (used after mobility / noise changes).
    fn recheck_all_receptions(&mut self) {
        for i in 0..self.receptions.len() {
            if !self.receptions[i].clean {
                continue;
            }
            let (tx, rx) = (self.receptions[i].tx, self.receptions[i].rx);
            let Some(src) = self.active.iter().find(|t| t.id == tx).map(|t| t.source) else {
                continue;
            };
            let signal =
                self.stations[src.0].tx_power * self.link[src.0][rx.0] * self.gain[src.0][rx.0];
            self.receptions[i].signal = signal;
            let interference = self.interference_at(rx, tx);
            if !self.prop.clean(signal, interference) {
                self.receptions[i].clean = false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propagation::PropagationConfig;
    use macaw_sim::{SimDuration, SimRng};

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    /// Classic Figure-1 line: A — B — C with A/B and B/C in range but A/C
    /// out of range.
    fn line_medium() -> (Medium, StationId, StationId, StationId) {
        let mut m = Medium::new(
            Propagation::new(PropagationConfig::default()),
            SimRng::new(1),
        );
        let a = m.add_station(Point::new(0.0, 0.0, 0.0));
        let b = m.add_station(Point::new(8.0, 0.0, 0.0));
        let c = m.add_station(Point::new(16.0, 0.0, 0.0));
        assert!(m.in_range(a, b) && m.in_range(b, c) && !m.in_range(a, c));
        (m, a, b, c)
    }

    #[test]
    fn lone_transmission_is_received_cleanly_in_range_only() {
        let (mut m, a, b, c) = line_medium();
        let tx = m.start_tx(a, t(0));
        let deliveries = m.end_tx(tx, t(1000));
        assert_eq!(deliveries.len(), 1, "only B is in range of A");
        assert_eq!(deliveries[0].station, b);
        assert!(deliveries[0].clean);
        let _ = c;
    }

    #[test]
    fn hidden_terminal_collision_at_middle_station() {
        // A and C transmit simultaneously; B hears both and receives neither.
        let (mut m, a, _b, c) = line_medium();
        let ta = m.start_tx(a, t(0));
        let tc = m.start_tx(c, t(100));
        let da = m.end_tx(ta, t(1000));
        let dc = m.end_tx(tc, t(1100));
        assert!(!da[0].clean, "A's packet collides at B");
        assert!(!dc[0].clean, "C's packet collides at B");
    }

    #[test]
    fn exposed_terminal_does_not_corrupt() {
        // B transmits to A while C transmits "outward": C is in range of B
        // only, so C's signal never reaches A and B's packet at A is clean.
        let (mut m, a, b, c) = line_medium();
        let tb = m.start_tx(b, t(0));
        let tc = m.start_tx(c, t(50));
        let db = m.end_tx(tb, t(1000));
        let a_delivery = db.iter().find(|d| d.station == a).unwrap();
        assert!(a_delivery.clean, "C is out of range of A; no interference");
        let _ = m.end_tx(tc, t(1050));
    }

    #[test]
    fn collision_condition_holds_for_entire_packet() {
        // Interference that starts mid-packet and even *ends* before the
        // packet does must still corrupt it.
        let (mut m, a, _b, c) = line_medium();
        let ta = m.start_tx(a, t(0));
        let tc = m.start_tx(c, t(200));
        let _ = m.end_tx(tc, t(400)); // interferer ends early
        let da = m.end_tx(ta, t(1000));
        assert!(!da[0].clean, "margin was violated during [200,400]us");
    }

    #[test]
    fn interference_arriving_after_packet_end_is_harmless() {
        let (mut m, _a, b, c) = line_medium();
        let tb = m.start_tx(b, t(0));
        let db = m.end_tx(tb, t(1000));
        assert!(db.iter().all(|d| d.clean));
        let tc = m.start_tx(c, t(1000));
        let _ = m.end_tx(tc, t(2000));
    }

    #[test]
    fn half_duplex_receiver_keying_up_loses_packet() {
        let (mut m, a, b, _c) = line_medium();
        let ta = m.start_tx(a, t(0));
        let tb = m.start_tx(b, t(500)); // B keys up mid-reception
        let da = m.end_tx(ta, t(1000));
        assert!(!da.iter().find(|d| d.station == b).unwrap().clean);
        let _ = m.end_tx(tb, t(1500));
    }

    #[test]
    fn receiver_already_transmitting_never_hears() {
        let (mut m, a, b, _c) = line_medium();
        let tb = m.start_tx(b, t(0));
        let ta = m.start_tx(a, t(100));
        let da = m.end_tx(ta, t(600));
        assert!(!da.iter().find(|d| d.station == b).unwrap().clean);
        let _ = m.end_tx(tb, t(1000));
    }

    #[test]
    fn capture_lets_much_closer_station_win() {
        // Receiver 2 ft from near transmitter, 9 ft from far one: distance
        // ratio 4.5 ≫ 10^(1/γ), so the near signal captures.
        let mut m = Medium::new(
            Propagation::new(PropagationConfig::default()),
            SimRng::new(2),
        );
        let near = m.add_station(Point::new(0.0, 0.0, 0.0));
        let rx = m.add_station(Point::new(2.0, 0.0, 0.0));
        let far = m.add_station(Point::new(11.0, 0.0, 0.0));
        assert!(m.in_range(rx, far));
        let tn = m.start_tx(near, t(0));
        let tf = m.start_tx(far, t(10));
        let dn = m.end_tx(tn, t(1000));
        assert!(dn.iter().find(|d| d.station == rx).unwrap().clean);
        let df = m.end_tx(tf, t(1010));
        assert!(!df.iter().find(|d| d.station == rx).unwrap().clean);
    }

    #[test]
    fn symmetry_in_range_is_reflexive_pairwise() {
        let (m, a, b, c) = line_medium();
        assert_eq!(m.in_range(a, b), m.in_range(b, a));
        assert_eq!(m.in_range(a, c), m.in_range(c, a));
    }

    #[test]
    fn carrier_sense_sees_in_range_transmitters_only() {
        let (mut m, a, b, c) = line_medium();
        assert!(!m.carrier_busy(b));
        let ta = m.start_tx(a, t(0));
        assert!(m.carrier_busy(b), "B hears A");
        assert!(!m.carrier_busy(c), "C does not hear A");
        assert!(!m.carrier_busy(a), "own transmission is not carrier");
        let _ = m.end_tx(ta, t(100));
        assert!(!m.carrier_busy(b));
    }

    #[test]
    fn rx_error_rate_corrupts_that_fraction_of_packets() {
        let mut m = Medium::new(
            Propagation::new(PropagationConfig::default()),
            SimRng::new(3),
        );
        let a = m.add_station(Point::new(0.0, 0.0, 0.0));
        let b = m.add_station(Point::new(5.0, 0.0, 0.0));
        m.set_rx_error_rate(b, 0.1);
        let mut lost = 0;
        let mut clock = 0u64;
        for _ in 0..5_000 {
            let tx = m.start_tx(a, t(clock));
            clock += 100;
            let d = m.end_tx(tx, t(clock));
            if !d[0].clean {
                lost += 1;
            }
        }
        let rate = lost as f64 / 5_000.0;
        assert!((rate - 0.1).abs() < 0.02, "observed loss rate {rate}");
    }

    #[test]
    fn spatial_noise_source_blocks_nearby_receiver() {
        let mut m = Medium::new(
            Propagation::new(PropagationConfig::default()),
            SimRng::new(4),
        );
        let a = m.add_station(Point::new(0.0, 0.0, 0.0));
        let b = m.add_station(Point::new(8.0, 0.0, 0.0));
        let n = m.add_noise_source(Point::new(9.0, 0.0, 0.0), 1.0);
        let tx = m.start_tx(a, t(0));
        let d = m.end_tx(tx, t(1000));
        assert!(!d[0].clean, "noise adjacent to B drowns A's signal");
        m.set_noise_active(n, false);
        let tx = m.start_tx(a, t(2000));
        let d = m.end_tx(tx, t(3000));
        assert!(d[0].clean, "noise off: clean again");
        let _ = b;
    }

    #[test]
    fn mobility_moves_station_between_cells() {
        let mut m = Medium::new(
            Propagation::new(PropagationConfig::default()),
            SimRng::new(5),
        );
        let base1 = m.add_station(Point::new(0.0, 0.0, 6.0));
        let base2 = m.add_station(Point::new(40.0, 0.0, 6.0));
        let pad = m.add_station(Point::new(3.0, 0.0, 0.0));
        assert!(m.in_range(pad, base1) && !m.in_range(pad, base2));
        m.set_position(pad, Point::new(37.0, 0.0, 0.0));
        assert!(!m.in_range(pad, base1) && m.in_range(pad, base2));
    }

    #[test]
    fn moving_receiver_mid_packet_loses_it() {
        let (mut m, a, b, _c) = line_medium();
        let ta = m.start_tx(a, t(0));
        m.set_position(b, Point::new(9.0, 0.0, 0.0));
        let da = m.end_tx(ta, t(1000));
        assert!(!da.iter().find(|d| d.station == b).unwrap().clean);
    }

    #[test]
    #[should_panic(expected = "already transmitting")]
    fn double_start_panics() {
        let (mut m, a, _b, _c) = line_medium();
        let _ = m.start_tx(a, t(0));
        let _ = m.start_tx(a, t(1));
    }

    #[test]
    fn deliveries_are_sorted_by_station_for_determinism() {
        let mut m = Medium::new(
            Propagation::new(PropagationConfig::default()),
            SimRng::new(6),
        );
        let mut ids = Vec::new();
        for i in 0..5 {
            ids.push(m.add_station(Point::new(i as f64, 0.0, 0.0)));
        }
        let tx = m.start_tx(ids[2], t(0));
        let d = m.end_tx(tx, t(100));
        let stations: Vec<_> = d.iter().map(|x| x.station).collect();
        let mut sorted = stations.clone();
        sorted.sort();
        assert_eq!(stations, sorted);
        assert_eq!(stations.len(), 4);
    }

    #[test]
    fn end_tx_into_reuses_buffer_and_matches_end_tx() {
        let (mut m, a, b, _c) = line_medium();
        let mut buf = Vec::new();
        let tx = m.start_tx(a, t(0));
        m.end_tx_into(tx, t(1000), &mut buf);
        assert_eq!(buf.len(), 1);
        assert_eq!(buf[0].station, b);
        assert!(buf[0].clean);
        let cap = buf.capacity();
        let tx = m.start_tx(a, t(2000));
        m.end_tx_into(tx, t(3000), &mut buf);
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.capacity(), cap, "the buffer must be reused, not reallocated");
    }

    #[test]
    fn power_change_refreshes_audibility_cache() {
        let (mut m, a, _b, c) = line_medium();
        assert!(!m.hears(c, a));
        m.set_tx_power(a, 1000.0);
        assert!(m.hears(c, a), "louder A now reaches C");
        let tx = m.start_tx(a, t(0));
        let d = m.end_tx(tx, t(1000));
        assert!(
            d.iter().any(|x| x.station == c && x.clean),
            "the cached audible list must include C after the power change"
        );
        m.set_tx_power(a, 1.0);
        let tx = m.start_tx(a, t(2000));
        let d = m.end_tx(tx, t(3000));
        assert!(!d.iter().any(|x| x.station == c));
    }

    #[test]
    fn mobility_refreshes_audibility_and_carrier_sense() {
        let (mut m, a, b, c) = line_medium();
        // Move A to the far side of C: C now hears A's carrier, B no longer does.
        m.set_position(a, Point::new(24.0, 0.0, 0.0));
        let ta = m.start_tx(a, t(0));
        assert!(m.carrier_busy(c), "C hears the moved A");
        assert!(!m.carrier_busy(b), "B is now out of range of A");
        let d = m.end_tx(ta, t(1000));
        assert!(d.iter().any(|x| x.station == c && x.clean));
        assert!(!d.iter().any(|x| x.station == b));
    }

    #[test]
    fn link_gain_is_directional_and_reversible() {
        let (mut m, a, b, _c) = line_medium();
        m.set_link_gain(a, b, 0.0);
        assert!(!m.hears(b, a), "the faded direction is dead");
        assert!(m.hears(a, b), "the reverse direction is untouched");
        let tx = m.start_tx(a, t(0));
        let d = m.end_tx(tx, t(1000));
        assert!(
            !d.iter().any(|x| x.station == b),
            "B is no longer in A's audible set"
        );
        m.set_link_gain(a, b, 1.0);
        assert!(m.hears(b, a), "restoring the factor restores the link");
        let tx = m.start_tx(a, t(2000));
        let d = m.end_tx(tx, t(3000));
        assert!(d.iter().any(|x| x.station == b && x.clean));
    }

    #[test]
    fn link_fade_mid_packet_loses_that_packet() {
        let (mut m, a, b, _c) = line_medium();
        let tx = m.start_tx(a, t(0));
        m.set_link_gain(a, b, 0.01);
        let d = m.end_tx(tx, t(1000));
        assert!(
            !d.iter().find(|x| x.station == b).unwrap().clean,
            "a fade during the flight corrupts the packet"
        );
    }

    #[test]
    fn tx_source_reports_in_flight_transmissions_only() {
        let (mut m, a, _b, _c) = line_medium();
        let tx = m.start_tx(a, t(0));
        assert_eq!(m.tx_source(tx), Some(a));
        let _ = m.end_tx(tx, t(100));
        assert_eq!(m.tx_source(tx), None);
    }

    #[test]
    fn station_added_mid_flight_sees_consistent_interference() {
        let (mut m, a, _b, _c) = line_medium();
        let ta = m.start_tx(a, t(0));
        // Registering a new station while a transmission is in flight must
        // fold the active interference into the newcomer's running sums.
        let d = m.add_station(Point::new(4.0, 0.0, 0.0));
        assert!(m.carrier_busy(d), "the newcomer hears the in-flight carrier");
        let _ = m.end_tx(ta, t(1000));
        assert!(!m.carrier_busy(d));
    }
}

#[cfg(test)]
mod power_tests {
    use super::*;
    use crate::propagation::PropagationConfig;
    use macaw_sim::{SimDuration, SimRng};

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    /// §4's reason for declining power variation, demonstrated: with unequal
    /// transmit powers the radio is no longer symmetric, so "A hears B" no
    /// longer implies "B hears A" — the property the CTS mechanism needs.
    #[test]
    fn unequal_power_breaks_symmetry() {
        let mut m = Medium::new(
            Propagation::new(PropagationConfig::default()),
            SimRng::new(1),
        );
        let loud = m.add_station(Point::new(0.0, 0.0, 0.0));
        let quiet = m.add_station(Point::new(12.0, 0.0, 0.0));
        assert!(!m.hears(quiet, loud) && !m.hears(loud, quiet), "baseline: both out of range");
        // Boost the loud station ~3x in range terms.
        m.set_tx_power(loud, 1000.0);
        assert!(m.hears(quiet, loud), "the loud station now reaches further");
        assert!(!m.hears(loud, quiet), "...but cannot hear the reply");
        // And its packets actually arrive.
        let tx = m.start_tx(loud, t(0));
        let d = m.end_tx(tx, t(1000));
        assert!(d.iter().any(|x| x.station == quiet && x.clean));
        // While the quiet station's never do.
        let tx = m.start_tx(quiet, t(2000));
        let d = m.end_tx(tx, t(3000));
        assert!(!d.iter().any(|x| x.station == loud));
    }

    /// A louder interferer needs proportionally more distance to be
    /// captured over.
    #[test]
    fn loud_interferer_defeats_capture() {
        let mk = |interferer_power: f64| {
            let mut m = Medium::new(
                Propagation::new(PropagationConfig::default()),
                SimRng::new(2),
            );
            let near = m.add_station(Point::new(0.0, 0.0, 0.0));
            let rx = m.add_station(Point::new(2.0, 0.0, 0.0));
            let far = m.add_station(Point::new(9.0, 0.0, 0.0));
            m.set_tx_power(far, interferer_power);
            let tn = m.start_tx(near, t(0));
            let _tf = m.start_tx(far, t(10));
            let dn = m.end_tx(tn, t(1000));
            dn.iter().find(|d| d.station == rx).unwrap().clean
        };
        assert!(mk(1.0), "at equal power the near signal captures");
        assert!(!mk(1000.0), "a 30 dB louder interferer defeats capture");
    }

    #[test]
    fn equal_powers_keep_hears_symmetric() {
        let mut m = Medium::new(
            Propagation::new(PropagationConfig::default()),
            SimRng::new(3),
        );
        let a = m.add_station(Point::new(0.0, 0.0, 0.0));
        let b = m.add_station(Point::new(8.0, 0.0, 0.0));
        assert_eq!(m.hears(a, b), m.hears(b, a));
        assert!(m.hears(a, b));
    }
}
