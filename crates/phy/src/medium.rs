//! The shared radio medium.
//!
//! [`Medium`] tracks every in-flight transmission and decides, per receiver,
//! whether each packet is received cleanly under the paper's rule:
//!
//! > "the designated receiving station can correctly receive the packet if
//! > the signal strength is greater than some threshold (the signal strength
//! > at 10 feet) and is greater than the sum of the other signals by at least
//! > 10 dB during the entire packet transmission time."
//!
//! We apply the same rule to *every* in-range station, not just the
//! designated receiver, because overhearing control packets (RTS/CTS/DS/RRTS)
//! is what drives deferral in MACA and MACAW.
//!
//! # Mechanics
//!
//! Interference is piecewise-constant between transmission start/end events,
//! so the "entire packet time" condition is enforced incrementally: every
//! in-flight `(transmission, receiver)` pair carries a `clean` flag that is
//! knocked false the moment any overlapping event (a new transmission, the
//! receiver keying up, the receiver moving) violates the capture margin.
//! Interference *decreasing* (a transmission ending) can never un-violate the
//! condition, so no re-check is needed on end events.
//!
//! The medium owns no event queue. The caller keys a station up with
//! [`Medium::start_tx`], schedules the end-of-frame event itself, and calls
//! [`Medium::end_tx`] when that event fires, receiving the delivery verdicts.

use macaw_sim::{SimRng, SimTime};

use crate::geometry::{cube_center, Point};
use crate::propagation::Propagation;

/// Index of a station registered with the medium.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct StationId(pub usize);

/// Handle to an in-flight transmission.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TxId(u64);

/// Verdict for one station at the end of a transmission.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Delivery {
    /// The station that (potentially) heard the packet.
    pub station: StationId,
    /// `true` iff the packet was received cleanly (threshold + capture
    /// margin held for the whole flight, station never keyed up, and the
    /// per-packet noise draw passed).
    pub clean: bool,
    /// Received signal power (normalized units), for diagnostics.
    pub signal: f64,
}

struct StationEntry {
    pos: Point,
    transmitting: Option<TxId>,
    /// Per-packet probability that a packet arriving at this station is
    /// corrupted by intermittent noise (§3.3.1's model).
    rx_error_rate: f64,
    /// Transmit power multiplier. The paper's stations all transmit at the
    /// same strength (1.0); §4 discusses — and declines — power variation
    /// because it breaks the symmetry the CTS mechanism depends on. The
    /// knob exists so that consequence can be demonstrated.
    tx_power: f64,
}

struct ActiveTx {
    id: TxId,
    source: StationId,
    start: SimTime,
}

struct Reception {
    tx: TxId,
    rx: StationId,
    signal: f64,
    clean: bool,
}

/// A fixed continuous noise emitter (e.g. the paper's electronic whiteboard,
/// when modelled spatially rather than as a packet error rate).
struct NoiseSource {
    pos: Point,
    power: f64,
    active: bool,
}

/// The shared single-channel radio medium.
pub struct Medium {
    prop: Propagation,
    stations: Vec<StationEntry>,
    active: Vec<ActiveTx>,
    receptions: Vec<Reception>,
    noise: Vec<NoiseSource>,
    rng: SimRng,
    next_tx: u64,
}

impl Medium {
    /// Create a medium with the given propagation model and RNG stream
    /// (used only for per-packet noise draws).
    pub fn new(prop: Propagation, rng: SimRng) -> Self {
        Medium {
            prop,
            stations: Vec::new(),
            active: Vec::new(),
            receptions: Vec::new(),
            noise: Vec::new(),
            rng,
            next_tx: 0,
        }
    }

    /// The propagation model in use.
    pub fn propagation(&self) -> &Propagation {
        &self.prop
    }

    /// Register a station; its position is snapped to the nearest cube
    /// center (stations "reside at the center of a cube").
    pub fn add_station(&mut self, pos: Point) -> StationId {
        let id = StationId(self.stations.len());
        self.stations.push(StationEntry {
            pos: cube_center(pos),
            transmitting: None,
            rx_error_rate: 0.0,
            tx_power: 1.0,
        });
        id
    }

    /// Number of registered stations.
    pub fn station_count(&self) -> usize {
        self.stations.len()
    }

    /// Current (cube-snapped) position of a station.
    pub fn position(&self, id: StationId) -> Point {
        self.stations[id.0].pos
    }

    /// Set the per-packet noise corruption probability for packets received
    /// at `id`.
    pub fn set_rx_error_rate(&mut self, id: StationId, p: f64) {
        assert!((0.0..=1.0).contains(&p), "error rate must be in [0,1]");
        self.stations[id.0].rx_error_rate = p;
    }

    /// Set a station's transmit power multiplier (default 1.0). §4 declines
    /// power variation because it breaks radio symmetry — with unequal
    /// powers, "A hears B" no longer implies "B hears A" and the CTS can no
    /// longer silence every potential collider.
    pub fn set_tx_power(&mut self, id: StationId, power: f64) {
        assert!(power > 0.0 && power.is_finite(), "power must be positive");
        self.stations[id.0].tx_power = power;
    }

    /// `true` iff a transmission by `from` is receivable at `to`
    /// (directional once transmit powers differ).
    pub fn hears(&self, to: StationId, from: StationId) -> bool {
        let d = self.stations[from.0].pos.distance(self.stations[to.0].pos);
        self.stations[from.0].tx_power * self.prop.power_at_distance(d)
            >= self.prop.threshold_power()
    }

    /// Add a continuous spatial noise emitter. Returns an index usable with
    /// [`Medium::set_noise_active`].
    pub fn add_noise_source(&mut self, pos: Point, power: f64) -> usize {
        self.noise.push(NoiseSource {
            pos: cube_center(pos),
            power,
            active: true,
        });
        self.noise.len() - 1
    }

    /// Enable or disable a spatial noise emitter. Turning one **on**
    /// invalidates any in-flight reception it now drowns out.
    pub fn set_noise_active(&mut self, index: usize, active: bool) {
        self.noise[index].active = active;
        if active {
            self.recheck_all_receptions();
        }
    }

    /// Move a station (mobility). Any packet in flight to or from a moving
    /// station is corrupted (the paper's pads move between packets; this is
    /// a conservative rule for the general case), and all other in-flight
    /// receptions are re-checked against the new interference geometry.
    pub fn set_position(&mut self, id: StationId, pos: Point) {
        self.stations[id.0].pos = cube_center(pos);
        let moving_tx = self.stations[id.0].transmitting;
        for r in &mut self.receptions {
            if r.rx == id || Some(r.tx) == moving_tx {
                r.clean = false;
            }
        }
        self.recheck_all_receptions();
    }

    /// `true` iff stations `a` and `b` are within reception range.
    pub fn in_range(&self, a: StationId, b: StationId) -> bool {
        let d = self.stations[a.0].pos.distance(self.stations[b.0].pos);
        self.prop.in_range(d)
    }

    /// `true` iff station `id` is currently transmitting.
    pub fn is_transmitting(&self, id: StationId) -> bool {
        self.stations[id.0].transmitting.is_some()
    }

    /// Carrier sense at station `id`: `true` iff the summed power of all
    /// other active transmissions (plus spatial noise) at `id` exceeds the
    /// reception threshold.
    pub fn carrier_busy(&self, id: StationId) -> bool {
        let here = self.stations[id.0].pos;
        let mut power = self.ambient_noise_at(here);
        for tx in &self.active {
            if tx.source == id {
                continue;
            }
            power += self.stations[tx.source.0].tx_power
                * self
                    .prop
                    .interference_power(self.stations[tx.source.0].pos.distance(here));
        }
        power >= self.prop.threshold_power()
    }

    /// Number of transmissions currently in flight.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Key station `source` up at time `now`. The caller must schedule the
    /// end-of-frame event and call [`Medium::end_tx`] when it fires.
    ///
    /// # Panics
    /// Panics if the station is already transmitting (the MAC layer must
    /// serialize its own transmissions).
    pub fn start_tx(&mut self, source: StationId, now: SimTime) -> TxId {
        assert!(
            self.stations[source.0].transmitting.is_none(),
            "station {source:?} is already transmitting"
        );
        let id = TxId(self.next_tx);
        self.next_tx += 1;
        self.stations[source.0].transmitting = Some(id);

        // Half-duplex: anything in flight *to* the new transmitter is lost.
        for r in &mut self.receptions {
            if r.rx == source {
                r.clean = false;
            }
        }

        self.active.push(ActiveTx {
            id,
            source,
            start: now,
        });

        // The new signal may drown existing receptions elsewhere. The new
        // transmission is already in `active`, so `interference_at` sees it.
        let src_pos = self.stations[source.0].pos;
        let tx_power = self.stations[source.0].tx_power;
        for i in 0..self.receptions.len() {
            let rx = self.receptions[i].rx;
            if !self.receptions[i].clean || rx == source {
                continue;
            }
            let added =
                tx_power * self.prop.interference_power(src_pos.distance(self.stations[rx.0].pos));
            if added > 0.0 {
                let interference = self.interference_at(rx, self.receptions[i].tx);
                let signal = self.receptions[i].signal;
                if !self.prop.clean(signal, interference) {
                    self.receptions[i].clean = false;
                }
            }
        }

        // Open a reception record at every in-range station.
        for (idx, st) in self.stations.iter().enumerate() {
            let rx = StationId(idx);
            if rx == source {
                continue;
            }
            let signal = tx_power * self.prop.power_at_distance(src_pos.distance(st.pos));
            if signal < self.prop.threshold_power() {
                continue; // out of range: hears nothing at all
            }
            let clean = st.transmitting.is_none() && {
                let interference = self.interference_at(rx, id);
                self.prop.clean(signal, interference)
            };
            self.receptions.push(Reception {
                tx: id,
                rx,
                signal,
                clean,
            });
        }
        id
    }

    /// Finish transmission `tx` at time `now`, returning one delivery per
    /// in-range station (in station order, for determinism).
    ///
    /// # Panics
    /// Panics if `tx` is not in flight.
    pub fn end_tx(&mut self, tx: TxId, _now: SimTime) -> Vec<Delivery> {
        let idx = self
            .active
            .iter()
            .position(|t| t.id == tx)
            .expect("end_tx: transmission not in flight");
        let source = self.active[idx].source;
        self.active.swap_remove(idx);
        debug_assert_eq!(self.stations[source.0].transmitting, Some(tx));
        self.stations[source.0].transmitting = None;

        let mut deliveries: Vec<Delivery> = Vec::new();
        let mut kept = Vec::with_capacity(self.receptions.len());
        for r in self.receptions.drain(..) {
            if r.tx == tx {
                deliveries.push(Delivery {
                    station: r.rx,
                    clean: r.clean,
                    signal: r.signal,
                });
            } else {
                kept.push(r);
            }
        }
        self.receptions = kept;
        deliveries.sort_by_key(|d| d.station);

        // Per-packet intermittent noise (§3.3.1): each packet is corrupted
        // at a receiving station with that station's error probability.
        for d in &mut deliveries {
            let rate = self.stations[d.station.0].rx_error_rate;
            if d.clean && rate > 0.0 && self.rng.chance(rate) {
                d.clean = false;
            }
        }
        deliveries
    }

    /// Time at which transmission `tx` started, if still in flight.
    pub fn tx_start(&self, tx: TxId) -> Option<SimTime> {
        self.active.iter().find(|t| t.id == tx).map(|t| t.start)
    }

    /// Summed interference power at station `rx` from all active
    /// transmissions except `except`, plus spatial noise.
    fn interference_at(&self, rx: StationId, except: TxId) -> f64 {
        let here = self.stations[rx.0].pos;
        let mut power = self.ambient_noise_at(here);
        for t in &self.active {
            if t.id == except || t.source == rx {
                continue;
            }
            power += self.stations[t.source.0].tx_power
                * self
                    .prop
                    .interference_power(self.stations[t.source.0].pos.distance(here));
        }
        power
    }

    fn ambient_noise_at(&self, here: Point) -> f64 {
        self.noise
            .iter()
            .filter(|n| n.active)
            .map(|n| n.power * self.prop.interference_power(n.pos.distance(here)))
            .sum()
    }

    /// Re-validate every in-flight reception against the current geometry
    /// and interference (used after mobility / noise changes).
    fn recheck_all_receptions(&mut self) {
        for i in 0..self.receptions.len() {
            if !self.receptions[i].clean {
                continue;
            }
            let (tx, rx) = (self.receptions[i].tx, self.receptions[i].rx);
            let Some(src) = self.active.iter().find(|t| t.id == tx).map(|t| t.source) else {
                continue;
            };
            let signal = self.stations[src.0].tx_power
                * self
                    .prop
                    .power_at_distance(self.stations[src.0].pos.distance(self.stations[rx.0].pos));
            self.receptions[i].signal = signal;
            let interference = self.interference_at(rx, tx);
            if !self.prop.clean(signal, interference) {
                self.receptions[i].clean = false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propagation::PropagationConfig;
    use macaw_sim::{SimDuration, SimRng};

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    /// Classic Figure-1 line: A — B — C with A/B and B/C in range but A/C
    /// out of range.
    fn line_medium() -> (Medium, StationId, StationId, StationId) {
        let mut m = Medium::new(
            Propagation::new(PropagationConfig::default()),
            SimRng::new(1),
        );
        let a = m.add_station(Point::new(0.0, 0.0, 0.0));
        let b = m.add_station(Point::new(8.0, 0.0, 0.0));
        let c = m.add_station(Point::new(16.0, 0.0, 0.0));
        assert!(m.in_range(a, b) && m.in_range(b, c) && !m.in_range(a, c));
        (m, a, b, c)
    }

    #[test]
    fn lone_transmission_is_received_cleanly_in_range_only() {
        let (mut m, a, b, c) = line_medium();
        let tx = m.start_tx(a, t(0));
        let deliveries = m.end_tx(tx, t(1000));
        assert_eq!(deliveries.len(), 1, "only B is in range of A");
        assert_eq!(deliveries[0].station, b);
        assert!(deliveries[0].clean);
        let _ = c;
    }

    #[test]
    fn hidden_terminal_collision_at_middle_station() {
        // A and C transmit simultaneously; B hears both and receives neither.
        let (mut m, a, _b, c) = line_medium();
        let ta = m.start_tx(a, t(0));
        let tc = m.start_tx(c, t(100));
        let da = m.end_tx(ta, t(1000));
        let dc = m.end_tx(tc, t(1100));
        assert!(!da[0].clean, "A's packet collides at B");
        assert!(!dc[0].clean, "C's packet collides at B");
    }

    #[test]
    fn exposed_terminal_does_not_corrupt() {
        // B transmits to A while C transmits "outward": C is in range of B
        // only, so C's signal never reaches A and B's packet at A is clean.
        let (mut m, a, b, c) = line_medium();
        let tb = m.start_tx(b, t(0));
        let tc = m.start_tx(c, t(50));
        let db = m.end_tx(tb, t(1000));
        let a_delivery = db.iter().find(|d| d.station == a).unwrap();
        assert!(a_delivery.clean, "C is out of range of A; no interference");
        let _ = m.end_tx(tc, t(1050));
    }

    #[test]
    fn collision_condition_holds_for_entire_packet() {
        // Interference that starts mid-packet and even *ends* before the
        // packet does must still corrupt it.
        let (mut m, a, _b, c) = line_medium();
        let ta = m.start_tx(a, t(0));
        let tc = m.start_tx(c, t(200));
        let _ = m.end_tx(tc, t(400)); // interferer ends early
        let da = m.end_tx(ta, t(1000));
        assert!(!da[0].clean, "margin was violated during [200,400]us");
    }

    #[test]
    fn interference_arriving_after_packet_end_is_harmless() {
        let (mut m, _a, b, c) = line_medium();
        let tb = m.start_tx(b, t(0));
        let db = m.end_tx(tb, t(1000));
        assert!(db.iter().all(|d| d.clean));
        let tc = m.start_tx(c, t(1000));
        let _ = m.end_tx(tc, t(2000));
    }

    #[test]
    fn half_duplex_receiver_keying_up_loses_packet() {
        let (mut m, a, b, _c) = line_medium();
        let ta = m.start_tx(a, t(0));
        let tb = m.start_tx(b, t(500)); // B keys up mid-reception
        let da = m.end_tx(ta, t(1000));
        assert!(!da.iter().find(|d| d.station == b).unwrap().clean);
        let _ = m.end_tx(tb, t(1500));
    }

    #[test]
    fn receiver_already_transmitting_never_hears() {
        let (mut m, a, b, _c) = line_medium();
        let tb = m.start_tx(b, t(0));
        let ta = m.start_tx(a, t(100));
        let da = m.end_tx(ta, t(600));
        assert!(!da.iter().find(|d| d.station == b).unwrap().clean);
        let _ = m.end_tx(tb, t(1000));
    }

    #[test]
    fn capture_lets_much_closer_station_win() {
        // Receiver 2 ft from near transmitter, 9 ft from far one: distance
        // ratio 4.5 ≫ 10^(1/γ), so the near signal captures.
        let mut m = Medium::new(
            Propagation::new(PropagationConfig::default()),
            SimRng::new(2),
        );
        let near = m.add_station(Point::new(0.0, 0.0, 0.0));
        let rx = m.add_station(Point::new(2.0, 0.0, 0.0));
        let far = m.add_station(Point::new(11.0, 0.0, 0.0));
        assert!(m.in_range(rx, far));
        let tn = m.start_tx(near, t(0));
        let tf = m.start_tx(far, t(10));
        let dn = m.end_tx(tn, t(1000));
        assert!(dn.iter().find(|d| d.station == rx).unwrap().clean);
        let df = m.end_tx(tf, t(1010));
        assert!(!df.iter().find(|d| d.station == rx).unwrap().clean);
    }

    #[test]
    fn symmetry_in_range_is_reflexive_pairwise() {
        let (m, a, b, c) = line_medium();
        assert_eq!(m.in_range(a, b), m.in_range(b, a));
        assert_eq!(m.in_range(a, c), m.in_range(c, a));
    }

    #[test]
    fn carrier_sense_sees_in_range_transmitters_only() {
        let (mut m, a, b, c) = line_medium();
        assert!(!m.carrier_busy(b));
        let ta = m.start_tx(a, t(0));
        assert!(m.carrier_busy(b), "B hears A");
        assert!(!m.carrier_busy(c), "C does not hear A");
        assert!(!m.carrier_busy(a), "own transmission is not carrier");
        let _ = m.end_tx(ta, t(100));
        assert!(!m.carrier_busy(b));
    }

    #[test]
    fn rx_error_rate_corrupts_that_fraction_of_packets() {
        let mut m = Medium::new(
            Propagation::new(PropagationConfig::default()),
            SimRng::new(3),
        );
        let a = m.add_station(Point::new(0.0, 0.0, 0.0));
        let b = m.add_station(Point::new(5.0, 0.0, 0.0));
        m.set_rx_error_rate(b, 0.1);
        let mut lost = 0;
        let mut clock = 0u64;
        for _ in 0..5_000 {
            let tx = m.start_tx(a, t(clock));
            clock += 100;
            let d = m.end_tx(tx, t(clock));
            if !d[0].clean {
                lost += 1;
            }
        }
        let rate = lost as f64 / 5_000.0;
        assert!((rate - 0.1).abs() < 0.02, "observed loss rate {rate}");
    }

    #[test]
    fn spatial_noise_source_blocks_nearby_receiver() {
        let mut m = Medium::new(
            Propagation::new(PropagationConfig::default()),
            SimRng::new(4),
        );
        let a = m.add_station(Point::new(0.0, 0.0, 0.0));
        let b = m.add_station(Point::new(8.0, 0.0, 0.0));
        let n = m.add_noise_source(Point::new(9.0, 0.0, 0.0), 1.0);
        let tx = m.start_tx(a, t(0));
        let d = m.end_tx(tx, t(1000));
        assert!(!d[0].clean, "noise adjacent to B drowns A's signal");
        m.set_noise_active(n, false);
        let tx = m.start_tx(a, t(2000));
        let d = m.end_tx(tx, t(3000));
        assert!(d[0].clean, "noise off: clean again");
        let _ = b;
    }

    #[test]
    fn mobility_moves_station_between_cells() {
        let mut m = Medium::new(
            Propagation::new(PropagationConfig::default()),
            SimRng::new(5),
        );
        let base1 = m.add_station(Point::new(0.0, 0.0, 6.0));
        let base2 = m.add_station(Point::new(40.0, 0.0, 6.0));
        let pad = m.add_station(Point::new(3.0, 0.0, 0.0));
        assert!(m.in_range(pad, base1) && !m.in_range(pad, base2));
        m.set_position(pad, Point::new(37.0, 0.0, 0.0));
        assert!(!m.in_range(pad, base1) && m.in_range(pad, base2));
    }

    #[test]
    fn moving_receiver_mid_packet_loses_it() {
        let (mut m, a, b, _c) = line_medium();
        let ta = m.start_tx(a, t(0));
        m.set_position(b, Point::new(9.0, 0.0, 0.0));
        let da = m.end_tx(ta, t(1000));
        assert!(!da.iter().find(|d| d.station == b).unwrap().clean);
    }

    #[test]
    #[should_panic(expected = "already transmitting")]
    fn double_start_panics() {
        let (mut m, a, _b, _c) = line_medium();
        let _ = m.start_tx(a, t(0));
        let _ = m.start_tx(a, t(1));
    }

    #[test]
    fn deliveries_are_sorted_by_station_for_determinism() {
        let mut m = Medium::new(
            Propagation::new(PropagationConfig::default()),
            SimRng::new(6),
        );
        let mut ids = Vec::new();
        for i in 0..5 {
            ids.push(m.add_station(Point::new(i as f64, 0.0, 0.0)));
        }
        let tx = m.start_tx(ids[2], t(0));
        let d = m.end_tx(tx, t(100));
        let stations: Vec<_> = d.iter().map(|x| x.station).collect();
        let mut sorted = stations.clone();
        sorted.sort();
        assert_eq!(stations, sorted);
        assert_eq!(stations.len(), 4);
    }
}

#[cfg(test)]
mod power_tests {
    use super::*;
    use crate::propagation::PropagationConfig;
    use macaw_sim::{SimDuration, SimRng};

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    /// §4's reason for declining power variation, demonstrated: with unequal
    /// transmit powers the radio is no longer symmetric, so "A hears B" no
    /// longer implies "B hears A" — the property the CTS mechanism needs.
    #[test]
    fn unequal_power_breaks_symmetry() {
        let mut m = Medium::new(
            Propagation::new(PropagationConfig::default()),
            SimRng::new(1),
        );
        let loud = m.add_station(Point::new(0.0, 0.0, 0.0));
        let quiet = m.add_station(Point::new(12.0, 0.0, 0.0));
        assert!(!m.hears(quiet, loud) && !m.hears(loud, quiet), "baseline: both out of range");
        // Boost the loud station ~3x in range terms.
        m.set_tx_power(loud, 1000.0);
        assert!(m.hears(quiet, loud), "the loud station now reaches further");
        assert!(!m.hears(loud, quiet), "...but cannot hear the reply");
        // And its packets actually arrive.
        let tx = m.start_tx(loud, t(0));
        let d = m.end_tx(tx, t(1000));
        assert!(d.iter().any(|x| x.station == quiet && x.clean));
        // While the quiet station's never do.
        let tx = m.start_tx(quiet, t(2000));
        let d = m.end_tx(tx, t(3000));
        assert!(!d.iter().any(|x| x.station == loud));
    }

    /// A louder interferer needs proportionally more distance to be
    /// captured over.
    #[test]
    fn loud_interferer_defeats_capture() {
        let mk = |interferer_power: f64| {
            let mut m = Medium::new(
                Propagation::new(PropagationConfig::default()),
                SimRng::new(2),
            );
            let near = m.add_station(Point::new(0.0, 0.0, 0.0));
            let rx = m.add_station(Point::new(2.0, 0.0, 0.0));
            let far = m.add_station(Point::new(9.0, 0.0, 0.0));
            m.set_tx_power(far, interferer_power);
            let tn = m.start_tx(near, t(0));
            let _tf = m.start_tx(far, t(10));
            let dn = m.end_tx(tn, t(1000));
            dn.iter().find(|d| d.station == rx).unwrap().clean
        };
        assert!(mk(1.0), "at equal power the near signal captures");
        assert!(!mk(1000.0), "a 30 dB louder interferer defeats capture");
    }

    #[test]
    fn equal_powers_keep_hears_symmetric() {
        let mut m = Medium::new(
            Propagation::new(PropagationConfig::default()),
            SimRng::new(3),
        );
        let a = m.add_station(Point::new(0.0, 0.0, 0.0));
        let b = m.add_station(Point::new(8.0, 0.0, 0.0));
        assert_eq!(m.hears(a, b), m.hears(b, a));
        assert!(m.hears(a, b));
    }
}
