//! The dense cached medium: `N×N` pairwise matrices, kept as the oracle.
//!
//! [`DenseMedium`] implements [`Medium`] with fully materialized pairwise
//! signal caches. Station geometry changes rarely (registration, mobility,
//! power changes) while signal queries happen on every carrier-sense poll
//! and every transmission start/end, so all pairwise signal quantities are
//! precomputed and kept incrementally up to date:
//!
//! * `gain[a][b]` — path gain `power_at_distance(d(a,b))`; `int_gain[a][b]`
//!   — the same with the interference cutoff applied; `range[a][b]` — the
//!   in-range predicate. All symmetric, rebuilt only for the affected rows
//!   on `set_position` / `add_station`.
//! * `audible[src]` — ascending list of stations that can receive `src`'s
//!   transmissions at its current power (`tx_power · gain ≥ threshold`);
//!   rebuilt on position and power changes. `start_tx` opens receptions by
//!   walking this list instead of scanning every station.
//! * `ambient[b]` — summed spatial-noise power at each station, rebuilt when
//!   noise sources are added or toggled; `incident[b]` — `ambient[b]` plus
//!   the summed interference power of *all* active transmissions at `b`,
//!   maintained by appending on `start_tx` and rebuilt on `end_tx` and
//!   geometry changes.
//!
//! Every cached value is produced by the *same* floating-point operations on
//! the same inputs as the naive implementation
//! ([`ReferenceMedium`](crate::reference::ReferenceMedium)), so results are
//! bit-identical, not merely approximately equal. Two details matter for
//! that guarantee:
//!
//! * **Fold order.** IEEE-754 addition is not associative, so `incident[b]`
//!   must be the exact left-to-right fold `ambient + c₁ + c₂ + …` in
//!   active-list order that the reference computes per query. Appending a
//!   new transmission's contribution preserves that fold; *removing* one
//!   would not (`(a+b)−b ≠ a` in general), so `end_tx` rebuilds the sums
//!   from scratch in the post-removal list order instead of subtracting.
//! * **Exclusions.** Queries that exclude a specific transmission
//!   (`interference_at`) cannot be answered from the running sum exactly,
//!   and fall back to an O(active) fold over cached gains. The running sum
//!   answers the common exclusion-free cases: carrier sense at an idle
//!   station, and the interference seen by a not-currently-transmitting
//!   receiver when a new transmission opens (the new transmission is the
//!   *last* active entry, so "all but it" is exactly the pre-append sum).
//!
//! Debug builds re-derive each fast-path answer the slow way and assert
//! bit-equality, so the unit suite exercises the equivalence on every query.
//!
//! # Why keep it
//!
//! The matrices cost O(N²) memory and every `set_position`/`end_tx` is
//! O(N·active); [`SparseMedium`](crate::sparse::SparseMedium) replaces this
//! with O(N·k) structures for large-N runs. The dense medium stays as the
//! mid-fidelity oracle in the sparse medium's equivalence tests and as the
//! baseline the `scale` bench measures its speedup against.

use macaw_sim::{FastHashMap, SimRng, SimTime};

use crate::geometry::{cube_center, Point};
use crate::medium::{Delivery, Medium, StationId, TxId};
use crate::propagation::Propagation;

struct StationEntry {
    pos: Point,
    transmitting: Option<TxId>,
    /// Per-packet probability that a packet arriving at this station is
    /// corrupted by intermittent noise (§3.3.1's model).
    rx_error_rate: f64,
    /// Transmit power multiplier. The paper's stations all transmit at the
    /// same strength (1.0); §4 discusses — and declines — power variation
    /// because it breaks the symmetry the CTS mechanism depends on. The
    /// knob exists so that consequence can be demonstrated.
    tx_power: f64,
}

/// One entry in the ordered active list, which defines fold order. The
/// start time lives in the `live` map (the list is never searched by time).
struct ActiveTx {
    id: TxId,
    source: StationId,
}

struct Reception {
    tx: TxId,
    rx: StationId,
    signal: f64,
    clean: bool,
}

/// A fixed continuous noise emitter (e.g. the paper's electronic whiteboard,
/// when modelled spatially rather than as a packet error rate).
struct NoiseSource {
    pos: Point,
    power: f64,
    active: bool,
}

/// The dense cached radio medium (see module docs).
pub struct DenseMedium {
    prop: Propagation,
    stations: Vec<StationEntry>,
    active: Vec<ActiveTx>,
    /// `TxId` raw → `(source, start)` for in-flight transmissions: O(1)
    /// `tx_source`/`tx_start`/reception-recheck lookups instead of a linear
    /// `active` scan (the same id→slot map pattern as the sparse slab; the
    /// ordered `active` list itself stays, it defines fold order). Lookup
    /// only, never iterated.
    live: FastHashMap<u64, (StationId, SimTime)>,
    receptions: Vec<Reception>,
    noise: Vec<NoiseSource>,
    rng: SimRng,
    next_tx: u64,
    /// `gain[a][b]` = `power_at_distance(d(a,b))` (symmetric).
    gain: Vec<Vec<f64>>,
    /// Per-direction link gain multiplier (`link[src][dst]`, default 1.0).
    /// Models link asymmetry faults: an obstruction or fade that attenuates
    /// `src`'s signal *at `dst`* without affecting the reverse direction.
    /// Applied as `tx_power · link · gain` everywhere a signal or
    /// interference power is formed; multiplying by the default 1.0 is an
    /// exact identity, so an all-ones matrix is bit-identical to no matrix.
    link: Vec<Vec<f64>>,
    /// `int_gain[a][b]` = `interference_power(d(a,b))` (symmetric).
    int_gain: Vec<Vec<f64>>,
    /// `range[a][b]` = `prop.in_range(d(a,b))` (symmetric).
    range: Vec<Vec<bool>>,
    /// Ascending station indices with `tx_power[src] * gain[src][b]` at or
    /// above the reception threshold — who hears `src` transmit.
    audible: Vec<Vec<usize>>,
    /// `noise_gain[n][b]` = `interference_power(d(noise n, station b))`.
    noise_gain: Vec<Vec<f64>>,
    /// Summed active spatial-noise power at each station, in noise order.
    ambient: Vec<f64>,
    /// `ambient[b]` plus every active transmission's interference power at
    /// `b`, folded in active-list order (see module docs).
    incident: Vec<f64>,
}

impl Medium for DenseMedium {
    fn new(prop: Propagation, rng: SimRng) -> Self {
        DenseMedium {
            prop,
            stations: Vec::new(),
            active: Vec::new(),
            live: FastHashMap::default(),
            receptions: Vec::new(),
            noise: Vec::new(),
            rng,
            next_tx: 0,
            gain: Vec::new(),
            link: Vec::new(),
            int_gain: Vec::new(),
            range: Vec::new(),
            audible: Vec::new(),
            noise_gain: Vec::new(),
            ambient: Vec::new(),
            incident: Vec::new(),
        }
    }

    fn propagation(&self) -> &Propagation {
        &self.prop
    }

    fn add_station(&mut self, pos: Point) -> StationId {
        let idx = self.stations.len();
        let id = StationId(idx);
        self.stations.push(StationEntry {
            pos: cube_center(pos),
            transmitting: None,
            rx_error_rate: 0.0,
            tx_power: 1.0,
        });
        let pos = self.stations[idx].pos;

        // Grow the pairwise matrices by one row and one column.
        let mut gain_row = Vec::with_capacity(idx + 1);
        let mut int_row = Vec::with_capacity(idx + 1);
        let mut range_row = Vec::with_capacity(idx + 1);
        for (other_idx, other) in self.stations.iter().enumerate() {
            let d = pos.distance(other.pos);
            let g = self.prop.power_at_distance(d);
            let ig = self.prop.interference_power(d);
            let r = self.prop.in_range(d);
            if other_idx < idx {
                self.gain[other_idx].push(g);
                self.link[other_idx].push(1.0);
                self.int_gain[other_idx].push(ig);
                self.range[other_idx].push(r);
            }
            gain_row.push(g);
            int_row.push(ig);
            range_row.push(r);
        }
        self.gain.push(gain_row);
        self.link.push(vec![1.0; idx + 1]);
        self.int_gain.push(int_row);
        self.range.push(range_row);

        // Audibility: the new station may hear others and be heard by them.
        for src in 0..idx {
            if self.stations[src].tx_power * self.link[src][idx] * self.gain[src][idx]
                >= self.prop.threshold_power()
            {
                self.audible[src].push(idx); // largest index: stays ascending
            }
        }
        self.audible.push(Vec::new());
        self.rebuild_audible(idx);

        for (n, src) in self.noise.iter().enumerate() {
            self.noise_gain[n].push(self.prop.interference_power(src.pos.distance(pos)));
        }
        self.ambient.push(0.0);
        self.rebuild_ambient_of(idx);
        self.incident.push(0.0);
        self.rebuild_incident_of(idx);
        id
    }

    fn station_count(&self) -> usize {
        self.stations.len()
    }

    fn position(&self, id: StationId) -> Point {
        self.stations[id.0].pos
    }

    fn set_rx_error_rate(&mut self, id: StationId, p: f64) {
        assert!((0.0..=1.0).contains(&p), "error rate must be in [0,1]");
        self.stations[id.0].rx_error_rate = p;
    }

    fn set_tx_power(&mut self, id: StationId, power: f64) {
        assert!(power > 0.0 && power.is_finite(), "power must be positive");
        self.stations[id.0].tx_power = power;
        self.rebuild_audible(id.0);
        // If `id` is mid-transmission its waveform changed mid-frame (own
        // packet lost) and its interference contribution changed everywhere
        // (everyone else's receptions re-verdicted). An idle station
        // contributes no interference term, so nothing more to do then.
        if let Some(tx) = self.stations[id.0].transmitting {
            for r in &mut self.receptions {
                if r.tx == tx {
                    r.clean = false;
                }
            }
            self.rebuild_incident();
            self.recheck_all_receptions();
        }
    }

    fn hears(&self, to: StationId, from: StationId) -> bool {
        self.stations[from.0].tx_power * self.link[from.0][to.0] * self.gain[from.0][to.0]
            >= self.prop.threshold_power()
    }

    fn set_link_gain(&mut self, src: StationId, dst: StationId, factor: f64) {
        assert!(
            factor >= 0.0 && factor.is_finite(),
            "link gain must be finite and non-negative"
        );
        assert_ne!(src, dst, "link gain applies to a pair of distinct stations");
        self.link[src.0][dst.0] = factor;
        if let Some(tx) = self.stations[src.0].transmitting {
            for r in &mut self.receptions {
                if r.tx == tx && r.rx == dst {
                    r.clean = false;
                }
            }
        }
        // Only `dst`'s membership in `audible[src]` can have flipped.
        let qualifies = self.stations[src.0].tx_power
            * self.link[src.0][dst.0]
            * self.gain[src.0][dst.0]
            >= self.prop.threshold_power();
        let list = &mut self.audible[src.0];
        match list.binary_search(&dst.0) {
            Ok(at) if !qualifies => {
                list.remove(at);
            }
            Err(at) if qualifies => {
                list.insert(at, dst.0);
            }
            _ => {}
        }
        if self.stations[src.0].transmitting.is_some() {
            // `src`'s interference contribution at `dst` changed.
            self.rebuild_incident();
        }
        self.recheck_all_receptions();
    }

    fn link_gain(&self, src: StationId, dst: StationId) -> f64 {
        self.link[src.0][dst.0]
    }

    fn add_noise_source(&mut self, pos: Point, power: f64) -> usize {
        let pos = cube_center(pos);
        self.noise.push(NoiseSource {
            pos,
            power,
            active: true,
        });
        self.noise_gain.push(
            self.stations
                .iter()
                .map(|st| self.prop.interference_power(pos.distance(st.pos)))
                .collect(),
        );
        self.rebuild_ambient();
        self.rebuild_incident();
        // Ambient noise increased: same rule as switching an emitter on.
        self.recheck_all_receptions();
        self.noise.len() - 1
    }

    fn set_noise_active(&mut self, index: usize, active: bool) {
        self.noise[index].active = active;
        self.rebuild_ambient();
        self.rebuild_incident();
        if active {
            self.recheck_all_receptions();
        }
    }

    fn set_position(&mut self, id: StationId, pos: Point) {
        self.stations[id.0].pos = cube_center(pos);
        let moving_tx = self.stations[id.0].transmitting;
        for r in &mut self.receptions {
            if r.rx == id || Some(r.tx) == moving_tx {
                r.clean = false;
            }
        }

        // Refresh every cache touching the moved station.
        let moved = id.0;
        let pos = self.stations[moved].pos;
        for other in 0..self.stations.len() {
            let d = pos.distance(self.stations[other].pos);
            let g = self.prop.power_at_distance(d);
            let ig = self.prop.interference_power(d);
            let r = self.prop.in_range(d);
            self.gain[moved][other] = g;
            self.gain[other][moved] = g;
            self.int_gain[moved][other] = ig;
            self.int_gain[other][moved] = ig;
            self.range[moved][other] = r;
            self.range[other][moved] = r;
        }
        for (n, src) in self.noise.iter().enumerate() {
            self.noise_gain[n][moved] = self.prop.interference_power(src.pos.distance(pos));
        }
        self.rebuild_audible(moved);
        for src in 0..self.stations.len() {
            if src == moved {
                continue;
            }
            // Membership of the moved station in everyone else's audible
            // list may have flipped; the cheap fix beats a full rebuild.
            let qualifies = self.stations[src].tx_power
                * self.link[src][moved]
                * self.gain[src][moved]
                >= self.prop.threshold_power();
            let list = &mut self.audible[src];
            match list.binary_search(&moved) {
                Ok(at) if !qualifies => {
                    list.remove(at);
                }
                Err(at) if qualifies => {
                    list.insert(at, moved);
                }
                _ => {}
            }
        }
        self.rebuild_ambient_of(moved);
        self.rebuild_incident();

        self.recheck_all_receptions();
    }

    fn in_range(&self, a: StationId, b: StationId) -> bool {
        self.range[a.0][b.0]
    }

    fn is_transmitting(&self, id: StationId) -> bool {
        self.stations[id.0].transmitting.is_some()
    }

    fn carrier_busy(&self, id: StationId) -> bool {
        if self.stations[id.0].transmitting.is_none() {
            // No exclusions apply, so the running sum answers in O(1).
            debug_assert_eq!(
                self.incident[id.0].to_bits(),
                self.fold_incident(id.0).to_bits(),
                "running incident sum diverged from the reference fold"
            );
            return self.incident[id.0] >= self.prop.threshold_power();
        }
        let mut power = self.ambient[id.0];
        for tx in &self.active {
            if tx.source == id {
                continue;
            }
            power += self.stations[tx.source.0].tx_power
                * self.link[tx.source.0][id.0]
                * self.int_gain[tx.source.0][id.0];
        }
        power >= self.prop.threshold_power()
    }

    fn active_count(&self) -> usize {
        self.active.len()
    }

    fn start_tx(&mut self, source: StationId, now: SimTime) -> TxId {
        assert!(
            self.stations[source.0].transmitting.is_none(),
            "station {source:?} is already transmitting"
        );
        let id = TxId::from_raw(self.next_tx);
        self.next_tx += 1;
        self.stations[source.0].transmitting = Some(id);

        // Half-duplex: anything in flight *to* the new transmitter is lost.
        for r in &mut self.receptions {
            if r.rx == source {
                r.clean = false;
            }
        }

        self.active.push(ActiveTx { id, source });
        self.live.insert(id.0, (source, now));

        // The new signal may drown existing receptions elsewhere. The new
        // transmission is already in `active`, so `interference_at` sees it.
        let tx_power = self.stations[source.0].tx_power;
        for i in 0..self.receptions.len() {
            let rx = self.receptions[i].rx;
            if !self.receptions[i].clean || rx == source {
                continue;
            }
            let added = tx_power * self.link[source.0][rx.0] * self.int_gain[source.0][rx.0];
            if added > 0.0 {
                let interference = self.interference_at(rx, self.receptions[i].tx);
                let signal = self.receptions[i].signal;
                if !self.prop.clean(signal, interference) {
                    self.receptions[i].clean = false;
                }
            }
        }

        // Open a reception record at every station that can hear `source`.
        // `audible[source]` is exactly the set passing the reference's
        // signal-threshold check, in the same ascending-index order.
        for li in 0..self.audible[source.0].len() {
            let idx = self.audible[source.0][li];
            let rx = StationId(idx);
            let signal = tx_power * self.link[source.0][idx] * self.gain[source.0][idx];
            debug_assert!(signal >= self.prop.threshold_power());
            let clean = self.stations[idx].transmitting.is_none() && {
                // The new transmission is the last active entry, so the
                // interference excluding it is the pre-append running sum.
                debug_assert_eq!(
                    self.incident[idx].to_bits(),
                    self.interference_at(rx, id).to_bits(),
                    "running incident sum diverged from the reference fold"
                );
                let interference = self.incident[idx];
                self.prop.clean(signal, interference)
            };
            self.receptions.push(Reception {
                tx: id,
                rx,
                signal,
                clean,
            });
        }

        // Append the new transmission's contribution to the running sums
        // (kept for *all* stations: the cutoff set can be wider or narrower
        // than the audible set once transmit powers differ from 1).
        for b in 0..self.stations.len() {
            self.incident[b] += tx_power * self.link[source.0][b] * self.int_gain[source.0][b];
        }
        id
    }

    fn end_tx_into(&mut self, tx: TxId, _now: SimTime, out: &mut Vec<Delivery>) {
        let idx = self
            .active
            .iter()
            .position(|t| t.id == tx)
            .expect("end_tx: transmission not in flight");
        let source = self.active[idx].source;
        // Ordered removal keeps the active list in transmission-start order
        // (matching the reference medium), so fold order at any station is
        // independent of when transmissions outside its neighborhood end.
        self.active.remove(idx);
        self.live.remove(&tx.0);
        debug_assert_eq!(self.stations[source.0].transmitting, Some(tx));
        self.stations[source.0].transmitting = None;

        // Extract this transmission's receptions and compact the rest in
        // place, preserving their relative order.
        out.clear();
        let mut write = 0;
        for read in 0..self.receptions.len() {
            let r = &self.receptions[read];
            if r.tx == tx {
                out.push(Delivery {
                    station: r.rx,
                    clean: r.clean,
                    signal: r.signal,
                });
            } else {
                self.receptions.swap(write, read);
                write += 1;
            }
        }
        self.receptions.truncate(write);
        // Already in ascending station order: `start_tx` opens this
        // transmission's receptions by walking the ascending `audible` list,
        // and the in-place compaction above preserves relative order.
        debug_assert!(out.windows(2).all(|w| w[0].station < w[1].station));

        // The removal deleted one term from the middle of every fold, so
        // the running sums are rebuilt in the (unchanged) list order rather
        // than subtracted (subtraction would drift from the reference; see
        // module docs).
        self.rebuild_incident();

        // Per-packet intermittent noise (§3.3.1): each packet is corrupted
        // at a receiving station with that station's error probability.
        for d in out.iter_mut() {
            let rate = self.stations[d.station.0].rx_error_rate;
            if d.clean && rate > 0.0 && self.rng.chance(rate) {
                d.clean = false;
            }
        }
    }

    fn tx_start(&self, tx: TxId) -> Option<SimTime> {
        self.live.get(&tx.0).map(|&(_, start)| start)
    }

    fn tx_source(&self, tx: TxId) -> Option<StationId> {
        self.live.get(&tx.0).map(|&(source, _)| source)
    }

    fn memory_footprint(&self) -> usize {
        use std::mem::size_of;
        let row_f64: usize = self.gain.iter().map(|r| r.capacity() * size_of::<f64>()).sum();
        let row_link: usize = self.link.iter().map(|r| r.capacity() * size_of::<f64>()).sum();
        let row_int: usize = self
            .int_gain
            .iter()
            .map(|r| r.capacity() * size_of::<f64>())
            .sum();
        let row_range: usize = self.range.iter().map(|r| r.capacity()).sum();
        let row_aud: usize = self
            .audible
            .iter()
            .map(|r| r.capacity() * size_of::<usize>())
            .sum();
        let row_noise: usize = self
            .noise_gain
            .iter()
            .map(|r| r.capacity() * size_of::<f64>())
            .sum();
        let spines = (self.gain.capacity()
            + self.link.capacity()
            + self.int_gain.capacity()
            + self.range.capacity()
            + self.audible.capacity()
            + self.noise_gain.capacity())
            * size_of::<Vec<f64>>();
        let flat = (self.ambient.capacity() + self.incident.capacity()) * size_of::<f64>()
            + self.stations.capacity() * size_of::<StationEntry>();
        row_f64 + row_link + row_int + row_range + row_aud + row_noise + spines + flat
    }
}

impl DenseMedium {
    /// Summed interference power at station `rx` from all active
    /// transmissions except `except`, plus spatial noise.
    fn interference_at(&self, rx: StationId, except: TxId) -> f64 {
        let mut power = self.ambient[rx.0];
        for t in &self.active {
            if t.id == except || t.source == rx {
                continue;
            }
            power += self.stations[t.source.0].tx_power
                * self.link[t.source.0][rx.0]
                * self.int_gain[t.source.0][rx.0];
        }
        power
    }

    /// The reference fold for `incident[b]`: ambient noise plus every active
    /// transmission in list order. Used to (re)build the running sums and,
    /// in debug builds, to check them.
    fn fold_incident(&self, b: usize) -> f64 {
        let mut power = self.ambient[b];
        for t in &self.active {
            power += self.stations[t.source.0].tx_power
                * self.link[t.source.0][b]
                * self.int_gain[t.source.0][b];
        }
        power
    }

    fn rebuild_incident(&mut self) {
        for b in 0..self.stations.len() {
            self.incident[b] = self.fold_incident(b);
        }
    }

    fn rebuild_incident_of(&mut self, b: usize) {
        self.incident[b] = self.fold_incident(b);
    }

    /// Recompute `ambient[b]` with the same filtered fold (noise-list order,
    /// inactive sources skipped) the reference uses per query.
    fn rebuild_ambient_of(&mut self, b: usize) {
        self.ambient[b] = self
            .noise
            .iter()
            .enumerate()
            .filter(|(_, n)| n.active)
            .map(|(ni, n)| n.power * self.noise_gain[ni][b])
            .sum();
    }

    fn rebuild_ambient(&mut self) {
        for b in 0..self.stations.len() {
            self.rebuild_ambient_of(b);
        }
    }

    fn rebuild_audible(&mut self, src: usize) {
        let power = self.stations[src].tx_power;
        let threshold = self.prop.threshold_power();
        let gain = &self.gain[src];
        let link = &self.link[src];
        let list = &mut self.audible[src];
        list.clear();
        list.extend(
            (0..self.stations.len())
                .filter(|&b| b != src && power * link[b] * gain[b] >= threshold),
        );
    }

    /// Re-validate every in-flight reception against the current geometry
    /// and interference (used after mobility / noise changes).
    fn recheck_all_receptions(&mut self) {
        for i in 0..self.receptions.len() {
            if !self.receptions[i].clean {
                continue;
            }
            let (tx, rx) = (self.receptions[i].tx, self.receptions[i].rx);
            let Some(&(src, _)) = self.live.get(&tx.0) else {
                continue;
            };
            let signal =
                self.stations[src.0].tx_power * self.link[src.0][rx.0] * self.gain[src.0][rx.0];
            self.receptions[i].signal = signal;
            let interference = self.interference_at(rx, tx);
            if !self.prop.clean(signal, interference) {
                self.receptions[i].clean = false;
            }
        }
    }
}

#[cfg(test)]
mod contract {
    crate::medium::medium_contract_tests!(crate::dense::DenseMedium);
}
