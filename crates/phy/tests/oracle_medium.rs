//! Oracle property tests: the cached [`Medium`] must be *bit-identical* to
//! the naive [`ReferenceMedium`] on arbitrary topologies and operation
//! schedules — every `Delivery` (including the f64 signal), every
//! `carrier_busy` / `hears` / `in_range` answer, and the same RNG draw
//! sequence (divergence there would desynchronize later deliveries).
//!
//! Coordinates are sampled on the integer grid so cube-snapped positions
//! land on exact knife-edge distances (e.g. exactly 10.0 ft, where a
//! signal's contribution equals the reception threshold exactly) — the
//! cases where an "approximately equal" cache would betray itself.

use macaw_phy::reference::ReferenceMedium;
use macaw_phy::{
    corrupt_deliveries, ChaosMedium, LinkWindow, Medium, Point, Propagation, PropagationConfig,
    StationId, TxId,
};
use macaw_sim::{SimDuration, SimRng, SimTime};
use proptest::prelude::*;

#[derive(Clone, Copy, Debug)]
enum Op {
    Start(usize),
    End(usize),
    Move(usize, Point),
    SetPower(usize, f64),
    SetErrorRate(usize, f64),
    AddStation(Point),
    AddNoise(Point, f64),
    ToggleNoise(usize, bool),
    SetLinkGain(usize, usize, f64),
}

fn arb_point() -> impl Strategy<Value = Point> {
    ((-14i32..15), (-14i32..15), (-3i32..4))
        .prop_map(|(x, y, z)| Point::new(x as f64, y as f64, z as f64))
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..16).prop_map(Op::Start),
        (0usize..16).prop_map(Op::End),
        // Two extra Start/End arms keep transmissions overlapping often.
        (0usize..16).prop_map(Op::Start),
        (0usize..16).prop_map(Op::End),
        ((0usize..16), arb_point()).prop_map(|(i, p)| Op::Move(i, p)),
        ((0usize..16), (1u32..41)).prop_map(|(i, q)| Op::SetPower(i, q as f64 / 4.0)),
        ((0usize..16), (0u32..30)).prop_map(|(i, r)| Op::SetErrorRate(i, r as f64 / 100.0)),
        arb_point().prop_map(Op::AddStation),
        (arb_point(), (1u32..30)).prop_map(|(p, w)| Op::AddNoise(p, w as f64 / 10.0)),
        ((0usize..8), any::<bool>()).prop_map(|(i, a)| Op::ToggleNoise(i, a)),
        // Gain quanta include 0.0 (dead link) and values > 1.0 (amplified).
        ((0usize..16), (0usize..16), (0u32..9))
            .prop_map(|(i, j, g)| Op::SetLinkGain(i, j, g as f64 / 4.0)),
    ]
}

/// Compare every query surface of the two media.
fn assert_same_views<M: Medium>(fast: &M, slow: &ReferenceMedium) -> Result<(), TestCaseError> {
    let n = fast.station_count();
    prop_assert_eq!(n, slow.station_count());
    prop_assert_eq!(fast.active_count(), slow.active_count());
    for a in 0..n {
        let sa = StationId(a);
        prop_assert_eq!(fast.position(sa), slow.position(sa));
        prop_assert_eq!(
            fast.carrier_busy(sa),
            slow.carrier_busy(sa),
            "carrier_busy diverged at station {}",
            a
        );
        for b in 0..n {
            let sb = StationId(b);
            prop_assert_eq!(
                fast.hears(sa, sb),
                slow.hears(sa, sb),
                "hears({}, {}) diverged",
                a,
                b
            );
            prop_assert_eq!(
                fast.in_range(sa, sb),
                slow.in_range(sa, sb),
                "in_range({}, {}) diverged",
                a,
                b
            );
        }
    }
    Ok(())
}

fn run_schedule<M: Medium>(seed: u64, points: Vec<Point>, ops: Vec<Op>) -> Result<(), TestCaseError> {
    let prop = Propagation::new(PropagationConfig::default());
    let mut fast = M::new(prop, SimRng::new(seed));
    let mut slow = ReferenceMedium::new(prop, SimRng::new(seed));
    for p in &points {
        prop_assert_eq!(fast.add_station(*p), slow.add_station(*p));
    }
    let mut live: Vec<TxId> = Vec::new();
    let mut noise_count = 0usize;
    let mut clock = 0u64;
    let end_at = |clock: &mut u64| {
        *clock += 7;
        SimTime::ZERO + SimDuration::from_micros(*clock)
    };

    for op in ops {
        let now = end_at(&mut clock);
        match op {
            Op::Start(i) => {
                let s = StationId(i % fast.station_count());
                if !fast.is_transmitting(s) {
                    let tf = fast.start_tx(s, now);
                    let ts = slow.start_tx(s, now);
                    prop_assert_eq!(tf, ts);
                    live.push(tf);
                }
            }
            Op::End(k) => {
                if !live.is_empty() {
                    let tx = live.remove(k % live.len());
                    prop_assert_eq!(fast.tx_start(tx), slow.tx_start(tx));
                    let df = fast.end_tx(tx, now);
                    let ds = slow.end_tx(tx, now);
                    prop_assert_eq!(df, ds, "deliveries diverged for {:?}", tx);
                }
            }
            Op::Move(i, p) => {
                let s = StationId(i % fast.station_count());
                fast.set_position(s, p);
                slow.set_position(s, p);
            }
            Op::SetPower(i, w) => {
                let s = StationId(i % fast.station_count());
                fast.set_tx_power(s, w);
                slow.set_tx_power(s, w);
            }
            Op::SetErrorRate(i, r) => {
                let s = StationId(i % fast.station_count());
                fast.set_rx_error_rate(s, r);
                slow.set_rx_error_rate(s, r);
            }
            Op::AddStation(p) => {
                prop_assert_eq!(fast.add_station(p), slow.add_station(p));
            }
            Op::AddNoise(p, w) => {
                prop_assert_eq!(fast.add_noise_source(p, w), slow.add_noise_source(p, w));
                noise_count += 1;
            }
            Op::ToggleNoise(i, active) => {
                if noise_count > 0 {
                    fast.set_noise_active(i % noise_count, active);
                    slow.set_noise_active(i % noise_count, active);
                }
            }
            Op::SetLinkGain(i, j, g) => {
                let n = fast.station_count();
                let (src, dst) = (StationId(i % n), StationId(j % n));
                if src != dst {
                    fast.set_link_gain(src, dst, g);
                    slow.set_link_gain(src, dst, g);
                    prop_assert_eq!(fast.link_gain(src, dst), slow.link_gain(src, dst));
                }
            }
        }
        assert_same_views(&fast, &slow)?;
    }

    // Drain every transmission still in flight and compare the verdicts.
    for tx in live {
        let now = end_at(&mut clock);
        let df = fast.end_tx(tx, now);
        let ds = slow.end_tx(tx, now);
        prop_assert_eq!(df, ds, "drain deliveries diverged for {:?}", tx);
    }
    assert_same_views(&fast, &slow)?;
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    fn cached_medium_matches_reference_exactly(
        seed in 0u64..1_000_000,
        points in proptest::collection::vec(arb_point(), 2..9),
        ops in proptest::collection::vec(arb_op(), 1..48),
    ) {
        // Both cached media replay the identical schedule against the same
        // reference with the same seed, so this also pins sparse == dense.
        run_schedule::<macaw_phy::SparseMedium>(seed, points.clone(), ops.clone())?;
        run_schedule::<macaw_phy::DenseMedium>(seed, points, ops)?;
    }

    /// Focused variant: no mobility or power ops, heavy start/end churn
    /// with per-packet noise draws, so the RNG streams must stay in
    /// lockstep across many deliveries.
    fn cached_medium_matches_reference_under_churn(
        seed in 0u64..1_000_000,
        points in proptest::collection::vec(arb_point(), 3..7),
        schedule in proptest::collection::vec((0usize..12, any::<bool>()), 8..64),
        rate in 1u32..25,
    ) {
        let ops: Vec<Op> = std::iter::once(Op::SetErrorRate(0, rate as f64 / 100.0))
            .chain(schedule.into_iter().map(|(i, start)| {
                if start { Op::Start(i) } else { Op::End(i) }
            }))
            .collect();
        run_schedule::<macaw_phy::SparseMedium>(seed, points.clone(), ops.clone())?;
        run_schedule::<macaw_phy::DenseMedium>(seed, points, ops)?;
    }

    /// `ChaosMedium` under a random fault schedule must match the naive
    /// reference medium with the identical corruption rule applied as a
    /// post-filter: corruption windows never perturb the signal model or
    /// the RNG stream, only the final clean verdicts.
    fn chaos_medium_matches_reference_under_fault_schedule(
        seed in 0u64..1_000_000,
        points in proptest::collection::vec(arb_point(), 2..7),
        windows in proptest::collection::vec(
            ((0usize..8), (0usize..8), (0u64..400), (1u64..400), (0u64..40)), 0..6),
        schedule in proptest::collection::vec((0usize..12, any::<bool>()), 8..48),
        rate in 0u32..25,
    ) {
        let prop = Propagation::new(PropagationConfig::default());
        let mut fast: ChaosMedium = ChaosMedium::with_new_medium(prop, SimRng::new(seed));
        let mut slow = ReferenceMedium::new(prop, SimRng::new(seed));
        let n = points.len();
        for p in &points {
            prop_assert_eq!(fast.add_station(*p), slow.add_station(*p));
        }
        fast.set_rx_error_rate(StationId(0), rate as f64 / 100.0);
        slow.set_rx_error_rate(StationId(0), rate as f64 / 100.0);

        let mut plan: Vec<LinkWindow> = Vec::new();
        for (i, j, from_us, len_us, air_us) in windows {
            let (src, dst) = (StationId(i % n), StationId(j % n));
            if src == dst {
                continue;
            }
            let from = SimTime::ZERO + SimDuration::from_micros(from_us);
            let w = LinkWindow {
                src,
                dst,
                from,
                until: from + SimDuration::from_micros(len_us),
                min_air: SimDuration::from_micros(air_us),
            };
            fast.add_corruption_window(w);
            plan.push(w);
        }

        let mut live: Vec<TxId> = Vec::new();
        let mut clock = 0u64;
        let tick = |clock: &mut u64| {
            *clock += 7;
            SimTime::ZERO + SimDuration::from_micros(*clock)
        };
        let end_both = |fast: &mut ChaosMedium,
                            slow: &mut ReferenceMedium,
                            tx: TxId,
                            now: SimTime|
         -> Result<(), TestCaseError> {
            let src = slow.tx_source(tx).expect("tx in flight");
            let start = slow.tx_start(tx).expect("tx in flight");
            prop_assert_eq!(fast.tx_source(tx), Some(src));
            let df = fast.end_tx(tx, now);
            let mut ds = slow.end_tx(tx, now);
            corrupt_deliveries(&plan, src, start, now, &mut ds);
            prop_assert_eq!(df, ds, "chaos deliveries diverged for {:?}", tx);
            Ok(())
        };
        for (i, start) in schedule {
            let now = tick(&mut clock);
            if start {
                let s = StationId(i % n);
                if !fast.is_transmitting(s) {
                    let tf = fast.start_tx(s, now);
                    let ts = slow.start_tx(s, now);
                    prop_assert_eq!(tf, ts);
                    live.push(tf);
                }
            } else if !live.is_empty() {
                let tx = live.remove(i % live.len());
                end_both(&mut fast, &mut slow, tx, now)?;
            }
        }
        for tx in live {
            let now = tick(&mut clock);
            end_both(&mut fast, &mut slow, tx, now)?;
        }
    }
}
