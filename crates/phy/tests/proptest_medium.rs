//! Property tests for the radio medium: symmetry, monotonicity and the
//! collision rule hold for arbitrary geometries.

use macaw_phy::{Medium, Point, Propagation, PropagationConfig, SparseMedium, StationId};
use macaw_sim::{SimDuration, SimRng, SimTime};
use proptest::prelude::*;

fn t(us: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_micros(us)
}

fn arb_point() -> impl Strategy<Value = Point> {
    (-30.0f64..30.0, -30.0f64..30.0, 0.0f64..7.0).prop_map(|(x, y, z)| Point::new(x, y, z))
}

proptest! {
    /// Radio symmetry (§2.1): if A hears B then B hears A.
    #[test]
    fn in_range_is_symmetric(points in proptest::collection::vec(arb_point(), 2..12)) {
        let mut m = SparseMedium::new(Propagation::new(PropagationConfig::default()), SimRng::new(1));
        let ids: Vec<_> = points.iter().map(|p| m.add_station(*p)).collect();
        for &a in &ids {
            for &b in &ids {
                prop_assert_eq!(m.in_range(a, b), m.in_range(b, a));
            }
        }
    }

    /// A lone transmission is received cleanly by exactly the in-range
    /// stations.
    #[test]
    fn lone_transmission_reaches_exactly_in_range(
        points in proptest::collection::vec(arb_point(), 2..12)
    ) {
        let mut m = SparseMedium::new(Propagation::new(PropagationConfig::default()), SimRng::new(2));
        let ids: Vec<_> = points.iter().map(|p| m.add_station(*p)).collect();
        let src = ids[0];
        let in_range: Vec<_> = ids[1..].iter().filter(|&&s| m.in_range(src, s)).copied().collect();
        let tx = m.start_tx(src, t(0));
        let deliveries = m.end_tx(tx, t(1000));
        prop_assert_eq!(deliveries.len(), in_range.len());
        for d in deliveries {
            prop_assert!(d.clean, "no interference: every in-range station hears cleanly");
            prop_assert!(in_range.contains(&d.station));
        }
    }

    /// With two simultaneous transmitters, a receiver in range of both can
    /// receive at most one of them cleanly (and only by capture).
    #[test]
    fn at_most_one_clean_reception_under_overlap(
        points in proptest::collection::vec(arb_point(), 3..10)
    ) {
        let mut m = SparseMedium::new(Propagation::new(PropagationConfig::default()), SimRng::new(3));
        let ids: Vec<_> = points.iter().map(|p| m.add_station(*p)).collect();
        let (a, b) = (ids[0], ids[1]);
        let ta = m.start_tx(a, t(0));
        let tb = m.start_tx(b, t(1));
        let da = m.end_tx(ta, t(1000));
        let db = m.end_tx(tb, t(1001));
        for &rx in &ids[2..] {
            let clean_a = da.iter().any(|d| d.station == rx && d.clean);
            let clean_b = db.iter().any(|d| d.station == rx && d.clean);
            if m.in_range(a, rx) && m.in_range(b, rx) {
                prop_assert!(!(clean_a && clean_b),
                    "a receiver cannot cleanly hear two overlapping in-range signals");
            }
        }
    }

    /// The propagation curve is monotone and the interference power never
    /// exceeds the signal power at the same distance.
    #[test]
    fn propagation_is_monotone(d1 in 0.5f64..50.0, d2 in 0.5f64..50.0) {
        let p = Propagation::new(PropagationConfig::default());
        let (near, far) = if d1 < d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(p.power_at_distance(near) >= p.power_at_distance(far));
        prop_assert!(p.interference_power(d1) <= p.power_at_distance(d1));
    }

    /// Per-packet noise: an error rate of 0 never corrupts, 1 always does.
    #[test]
    fn noise_extremes_behave(seed in 0u64..1000) {
        let mut m = SparseMedium::new(Propagation::new(PropagationConfig::default()), SimRng::new(seed));
        let a = m.add_station(Point::new(0.0, 0.0, 0.0));
        let b = m.add_station(Point::new(5.0, 0.0, 0.0));
        let _ = a;
        m.set_rx_error_rate(b, 0.0);
        let tx = m.start_tx(StationId(0), t(0));
        prop_assert!(m.end_tx(tx, t(100))[0].clean);
        m.set_rx_error_rate(b, 1.0);
        let tx = m.start_tx(StationId(0), t(200));
        prop_assert!(!m.end_tx(tx, t(300))[0].clean);
    }
}
