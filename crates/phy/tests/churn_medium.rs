//! End_tx-heavy churn schedules: the stamp-ordered slab must stay
//! bit-identical to the dense and reference oracles through arbitrary
//! start/end interleavings — including the free-list regime the randomized
//! oracle suite rarely reaches, where most `end_tx` calls vacate a slot in
//! the *middle* of the admission order and a later `start_tx` recycles it
//! while older transmissions fly on.
//!
//! The schedules are driven by a fixed LCG (not proptest) so the big
//! variants stay deterministic and cheap to rerun; sizes scale up in
//! release builds (`scripts/verify.sh` runs this suite with `--release`)
//! where the dense oracle can afford thousands of concurrent flights.

use macaw_phy::reference::ReferenceMedium;
use macaw_phy::{DenseMedium, Medium, Point, Propagation, PropagationConfig, SparseMedium, StationId, TxId};
use macaw_sim::{SimDuration, SimRng, SimTime};

/// Deterministic schedule driver (splitmix-style LCG).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self, bound: u64) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 33) % bound
    }
}

fn t(us: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_micros(us)
}

/// Clustered floor: `clusters` cells of `per` stations each, cells spaced
/// far beyond the cutoff so the sparse medium's neighborhoods stay small
/// while the global active count grows without bound.
fn cluster_points(clusters: usize, per: usize) -> Vec<Point> {
    let mut pts = Vec::with_capacity(clusters * per);
    for c in 0..clusters {
        let cx = (c % 64) as f64 * 40.0;
        let cy = (c / 64) as f64 * 40.0;
        for s in 0..per {
            pts.push(Point::new(cx + (s % 3) as f64 * 3.0, cy + (s / 3) as f64 * 3.0, 0.0));
        }
    }
    pts
}

/// Assert two deliveries vectors are bitwise identical (station, clean,
/// and the exact f64 signal bits).
fn assert_deliveries(
    a: &[macaw_phy::Delivery],
    b: &[macaw_phy::Delivery],
    what: &str,
) {
    assert_eq!(a.len(), b.len(), "{what}: delivery count diverged");
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.station, y.station, "{what}: station diverged");
        assert_eq!(x.clean, y.clean, "{what}: clean flag diverged");
        assert_eq!(
            x.signal.to_bits(),
            y.signal.to_bits(),
            "{what}: signal bits diverged"
        );
    }
}

/// Lockstep churn over two media: ramp up to `target_live` concurrent
/// flights, then run `churn_ops` interleaved starts / out-of-order ends /
/// mid-flight moves, then drain. Every end's deliveries are compared
/// bitwise; carrier sense is sampled each round.
fn churn_pair<A: Medium, B: Medium>(seed: u64, clusters: usize, per: usize, churn_ops: usize) {
    let prop = Propagation::new(PropagationConfig::default());
    let mut fast = A::new(prop, SimRng::new(seed));
    let mut slow = B::new(prop, SimRng::new(seed));
    let pts = cluster_points(clusters, per);
    let ids: Vec<StationId> = pts
        .iter()
        .map(|&p| {
            let f = fast.add_station(p);
            let s = slow.add_station(p);
            assert_eq!(f, s);
            f
        })
        .collect();
    // A little per-packet noise exercises RNG-stream lockstep.
    for &id in ids.iter().step_by(7) {
        fast.set_rx_error_rate(id, 0.05);
        slow.set_rx_error_rate(id, 0.05);
    }

    let mut rng = Lcg(seed ^ 0xC0FFEE);
    let mut live: Vec<TxId> = Vec::new();
    let mut clock = 0u64;
    let target_live = clusters * (per - 1);

    // Ramp: key up all but one station per cluster.
    for c in 0..clusters {
        for s in 0..per - 1 {
            clock += 3;
            let id = ids[c * per + s];
            let tf = fast.start_tx(id, t(clock));
            let ts = slow.start_tx(id, t(clock));
            assert_eq!(tf, ts);
            live.push(tf);
        }
    }
    assert_eq!(fast.active_count(), target_live);
    assert_eq!(slow.active_count(), target_live);

    let mut buf_f = Vec::new();
    let mut buf_s = Vec::new();
    for _ in 0..churn_ops {
        clock += 11;
        let r = rng.next(100);
        if r < 42 && !live.is_empty() {
            // Out-of-order end: vacate a random admission-order position.
            let at = rng.next(live.len() as u64) as usize;
            let tx = live.swap_remove(at);
            fast.end_tx_into(tx, t(clock), &mut buf_f);
            slow.end_tx_into(tx, t(clock), &mut buf_s);
            assert_deliveries(&buf_f, &buf_s, "churn end");
        } else if r < 84 {
            // Start an idle station (recycles a freed slab slot, if any).
            let mut k = rng.next(ids.len() as u64) as usize;
            let mut hops = 0;
            while fast.is_transmitting(ids[k]) {
                k = (k + 1) % ids.len();
                hops += 1;
                if hops > ids.len() {
                    break;
                }
            }
            if !fast.is_transmitting(ids[k]) {
                let tf = fast.start_tx(ids[k], t(clock));
                let ts = slow.start_tx(ids[k], t(clock));
                assert_eq!(tf, ts);
                live.push(tf);
            }
        } else {
            // Mobility mid-flight: hop a station (transmitting or not) to a
            // fresh spot in a random cluster.
            let k = rng.next(ids.len() as u64) as usize;
            let c = rng.next(clusters as u64) as f64;
            let jx = rng.next(9) as f64;
            let jy = rng.next(9) as f64;
            let p = Point::new(
                (c as usize % 64) as f64 * 40.0 + jx,
                (c as usize / 64) as f64 * 40.0 + jy,
                0.0,
            );
            fast.set_position(ids[k], p);
            slow.set_position(ids[k], p);
        }
        // Sampled query-surface check.
        let probe = ids[rng.next(ids.len() as u64) as usize];
        assert_eq!(fast.carrier_busy(probe), slow.carrier_busy(probe));
        assert_eq!(fast.active_count(), slow.active_count());
    }

    // Drain in a scrambled order: every remaining slot is vacated
    // out-of-admission-order.
    while !live.is_empty() {
        let pick = rng.next(live.len() as u64) as usize;
        let tx = live.swap_remove(pick);
        clock += 5;
        fast.end_tx_into(tx, t(clock), &mut buf_f);
        slow.end_tx_into(tx, t(clock), &mut buf_s);
        assert_deliveries(&buf_f, &buf_s, "drain end");
    }
    assert_eq!(fast.active_count(), 0);
    assert_eq!(slow.active_count(), 0);
}

/// Three-way bitwise agreement on a small, dense-enough floor where the
/// naive reference is affordable: sparse == reference and dense ==
/// reference on the same schedule.
#[test]
fn churn_small_three_way() {
    churn_pair::<SparseMedium, ReferenceMedium>(0xA5A5, 8, 6, 900);
    churn_pair::<DenseMedium, ReferenceMedium>(0xA5A5, 8, 6, 900);
}

/// The slab's reason to exist: a floor with a large global active count
/// and small neighborhoods. Debug builds run a few hundred concurrent
/// flights (the dense oracle's O(N·active) end_tx is the budget);
/// `verify.sh` reruns this suite in release where the schedule holds
/// thousands of flights concurrently in the air.
#[test]
fn churn_thousands_concurrent_sparse_vs_dense() {
    let (clusters, ops) = if cfg!(debug_assertions) {
        (64, 1200) // 384 stations, ~320 concurrent
    } else {
        (256, 4000) // 1536 stations, ~1280 concurrent; thousands of flights
    };
    churn_pair::<SparseMedium, DenseMedium>(0xBEEF, clusters, 6, ops);
}

/// Waypoint motion through live traffic: one walker per cluster follows
/// straight-line legs toward other clusters' centers while the rest of the
/// floor keys up and down around it. With 40 ft cluster spacing and a 7 ft
/// stride, every leg spends several ticks in the dead zone between
/// clusters — out of the cutoff reach of *everything* — so each crossing
/// exercises the mover pipeline's full leave-then-rejoin reconciliation
/// (the island-partition reach bound, crossed mid-flight). Half the
/// walkers are themselves transmitting while they walk. Moves land as one
/// `set_positions` batch per tick: the sparse medium runs its coalesced
/// batch path while the oracle runs the trait's default sequential loop —
/// the batched-vs-sequential equivalence rides along for free.
fn waypoint_pair<A: Medium, B: Medium>(seed: u64, clusters: usize, per: usize, ticks: usize) {
    let prop = Propagation::new(PropagationConfig::default());
    let mut fast = A::new(prop, SimRng::new(seed));
    let mut slow = B::new(prop, SimRng::new(seed));
    let pts = cluster_points(clusters, per);
    let ids: Vec<StationId> = pts
        .iter()
        .map(|&p| {
            let f = fast.add_station(p);
            let s = slow.add_station(p);
            assert_eq!(f, s);
            f
        })
        .collect();
    for &id in ids.iter().step_by(7) {
        fast.set_rx_error_rate(id, 0.05);
        slow.set_rx_error_rate(id, 0.05);
    }

    let mut rng = Lcg(seed ^ 0x057A_7105);
    let mut live: Vec<TxId> = Vec::new();
    let mut clock = 0u64;

    // Ramp: all but one station per cluster keys up — the walkers from
    // even clusters (station 0) walk *while transmitting*.
    for c in 0..clusters {
        for s in 0..per - 1 {
            clock += 3;
            let id = ids[c * per + s];
            let tf = fast.start_tx(id, t(clock));
            let ts = slow.start_tx(id, t(clock));
            assert_eq!(tf, ts);
            live.push(tf);
        }
    }

    // One walker per cluster: even clusters contribute their transmitting
    // station 0, odd clusters their idle station per-1.
    let walkers: Vec<usize> = (0..clusters)
        .map(|c| c * per + if c % 2 == 0 { 0 } else { per - 1 })
        .collect();
    let center = |c: usize| Point::new((c % 64) as f64 * 40.0, (c / 64) as f64 * 40.0, 0.0);
    let mut pos: Vec<Point> = walkers.iter().map(|&w| pts[w]).collect();
    let mut target: Vec<Point> = walkers
        .iter()
        .map(|_| center(rng.next(clusters as u64) as usize))
        .collect();

    let mut buf_f = Vec::new();
    let mut buf_s = Vec::new();
    let mut batch: Vec<(StationId, Point)> = Vec::with_capacity(walkers.len());
    const STEP: f64 = 7.0;
    for _ in 0..ticks {
        // Advance every walker one leg-step; batch the whole tick.
        batch.clear();
        for (k, &w) in walkers.iter().enumerate() {
            let (p, tgt) = (pos[k], target[k]);
            let (dx, dy) = (tgt.x - p.x, tgt.y - p.y);
            let dist = (dx * dx + dy * dy).sqrt();
            let next = if dist <= STEP {
                // Waypoint reached: snap, then pick the next cluster.
                target[k] = center(rng.next(clusters as u64) as usize);
                tgt
            } else {
                Point::new(p.x + dx * STEP / dist, p.y + dy * STEP / dist, 0.0)
            };
            pos[k] = next;
            batch.push((ids[w], next));
        }
        fast.set_positions(&batch);
        slow.set_positions(&batch);

        // Interleave churn between ticks: flights start and end while the
        // walkers are mid-leg (including mid-dead-zone).
        for _ in 0..3 {
            clock += 11;
            let r = rng.next(100);
            if r < 50 && !live.is_empty() {
                let at = rng.next(live.len() as u64) as usize;
                let tx = live.swap_remove(at);
                fast.end_tx_into(tx, t(clock), &mut buf_f);
                slow.end_tx_into(tx, t(clock), &mut buf_s);
                assert_deliveries(&buf_f, &buf_s, "waypoint end");
            } else {
                let mut k = rng.next(ids.len() as u64) as usize;
                let mut hops = 0;
                while fast.is_transmitting(ids[k]) && hops <= ids.len() {
                    k = (k + 1) % ids.len();
                    hops += 1;
                }
                if !fast.is_transmitting(ids[k]) {
                    let tf = fast.start_tx(ids[k], t(clock));
                    let ts = slow.start_tx(ids[k], t(clock));
                    assert_eq!(tf, ts);
                    live.push(tf);
                }
            }
        }
        // Probe the moving edge itself: every walker's carrier view must
        // agree while it is between clusters.
        for &w in walkers.iter().step_by(5) {
            assert_eq!(fast.carrier_busy(ids[w]), slow.carrier_busy(ids[w]));
            let peer = ids[(w + 1) % ids.len()];
            assert_eq!(fast.hears(ids[w], peer), slow.hears(ids[w], peer));
        }
        assert_eq!(fast.active_count(), slow.active_count());
    }

    while !live.is_empty() {
        let pick = rng.next(live.len() as u64) as usize;
        let tx = live.swap_remove(pick);
        clock += 5;
        fast.end_tx_into(tx, t(clock), &mut buf_f);
        slow.end_tx_into(tx, t(clock), &mut buf_s);
        assert_deliveries(&buf_f, &buf_s, "waypoint drain");
    }
    assert_eq!(fast.active_count(), 0);
    assert_eq!(slow.active_count(), 0);
}

/// Three-way bitwise agreement for waypoint motion on a reference-sized
/// floor: sparse == reference and dense == reference on the same walks.
#[test]
fn waypoint_walkers_small_three_way() {
    waypoint_pair::<SparseMedium, ReferenceMedium>(0x11E7, 8, 6, 60);
    waypoint_pair::<DenseMedium, ReferenceMedium>(0x11E7, 8, 6, 60);
}

/// Waypoint motion at scale: many walkers crossing reach bounds per tick
/// with hundreds-to-thousands of flights in the air.
#[test]
fn waypoint_walkers_sparse_vs_dense() {
    // The dense oracle pays O(N·active) per *move*, so the release size is
    // bounded by walkers × ticks, not flights: 96 walkers × 80 ticks keeps
    // ~480 flights airborne through ~7700 reach-bound crossings.
    let (clusters, ticks) = if cfg!(debug_assertions) {
        (48, 50)
    } else {
        (96, 80)
    };
    waypoint_pair::<SparseMedium, DenseMedium>(0x77A1, clusters, 6, ticks);
}

/// A batch is the sequence of its entries, on the *same* medium type: the
/// sparse medium's coalesced `set_positions` (deferred re-folds) must be
/// indistinguishable from applying each entry through `set_position` —
/// same deliveries, same carrier answers, same RNG stream.
#[test]
fn batched_moves_match_sequential_on_the_same_medium() {
    let prop = Propagation::new(PropagationConfig::default());
    let mut batched = SparseMedium::new(prop, SimRng::new(0xD0D0));
    let mut single = SparseMedium::new(prop, SimRng::new(0xD0D0));
    let pts = cluster_points(6, 6);
    let ids: Vec<StationId> = pts
        .iter()
        .map(|&p| {
            let a = batched.add_station(p);
            let b = single.add_station(p);
            assert_eq!(a, b);
            a
        })
        .collect();
    for &id in ids.iter().step_by(5) {
        batched.set_rx_error_rate(id, 0.1);
        single.set_rx_error_rate(id, 0.1);
    }
    let mut rng = Lcg(0xD0D0 ^ 0xBA7C4);
    let mut live: Vec<TxId> = Vec::new();
    let mut clock = 0u64;
    for &id in ids.iter().skip(1).step_by(2) {
        clock += 3;
        let a = batched.start_tx(id, t(clock));
        let b = single.start_tx(id, t(clock));
        assert_eq!(a, b);
        live.push(a);
    }
    let mut buf_a = Vec::new();
    let mut buf_b = Vec::new();
    for tick in 0..80u64 {
        // The same move set, batched on one instance, singly on the other.
        let moves: Vec<(StationId, Point)> = (0..4)
            .map(|j| {
                let k = rng.next(ids.len() as u64) as usize;
                let c = rng.next(6) as f64;
                (
                    ids[k],
                    Point::new(c * 40.0 + (tick % 9) as f64, j as f64 * 2.0, 0.0),
                )
            })
            .collect();
        batched.set_positions(&moves);
        for &(id, p) in &moves {
            single.set_position(id, p);
        }
        clock += 11;
        if tick % 3 == 0 && !live.is_empty() {
            let at = rng.next(live.len() as u64) as usize;
            let tx = live.swap_remove(at);
            batched.end_tx_into(tx, t(clock), &mut buf_a);
            single.end_tx_into(tx, t(clock), &mut buf_b);
            assert_deliveries(&buf_a, &buf_b, "batch-vs-sequential end");
        } else {
            let k = rng.next(ids.len() as u64) as usize;
            if !batched.is_transmitting(ids[k]) {
                let a = batched.start_tx(ids[k], t(clock));
                let b = single.start_tx(ids[k], t(clock));
                assert_eq!(a, b);
                live.push(a);
            }
        }
        let probe = ids[rng.next(ids.len() as u64) as usize];
        assert_eq!(batched.carrier_busy(probe), single.carrier_busy(probe));
        assert_eq!(batched.hears(probe, ids[0]), single.hears(probe, ids[0]));
    }
    while let Some(tx) = live.pop() {
        clock += 5;
        batched.end_tx_into(tx, t(clock), &mut buf_a);
        single.end_tx_into(tx, t(clock), &mut buf_b);
        assert_deliveries(&buf_a, &buf_b, "batch-vs-sequential drain");
    }
}
