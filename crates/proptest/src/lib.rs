//! Offline property-testing shim with a `proptest`-compatible API subset.
//!
//! This workspace must build and test with **zero network access**, so it
//! cannot depend on the real [proptest](https://crates.io/crates/proptest)
//! from the registry (even an unused optional registry dependency forces an
//! index fetch during resolution). This crate is a small, dependency-free
//! stand-in implementing exactly the surface our tests use:
//!
//! * the [`proptest!`] macro (with an optional
//!   `#![proptest_config(...)]` header),
//! * [`prop_assert!`] / [`prop_assert_eq!`] returning [`TestCaseError`],
//! * [`Strategy`] with [`Strategy::prop_map`] and [`Strategy::boxed`],
//! * range strategies (`0u64..100`, `-1.0f64..1.0`, ...), [`Just`],
//!   [`any`] and tuple strategies up to arity 5,
//! * [`collection::vec`] and the [`prop_oneof!`] union.
//!
//! **Deliberately not implemented:** shrinking (a failing case panics with
//! its fully rendered inputs instead), persistence of failure seeds, and
//! the `Arbitrary` derive. Cases are generated from a deterministic RNG
//! seeded by `(test name, case index)`, so failures reproduce exactly on
//! re-run without any state files.

use std::fmt;
use std::ops::Range;

// ----------------------------------------------------------------------
// Errors and configuration
// ----------------------------------------------------------------------

/// Failure of a single generated test case (what `prop_assert!` returns).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Construct a failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Per-`proptest!`-block configuration (only the case count is honoured).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

// ----------------------------------------------------------------------
// The case RNG
// ----------------------------------------------------------------------

/// Deterministic RNG driving value generation, seeded per `(test, case)`.
pub struct TestRng {
    state: [u64; 4],
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl TestRng {
    /// RNG for case number `case` of the property named `name`.
    pub fn for_case(name: &str, case: u64) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a over the name
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x1000_0000_01b3);
        }
        let mut sm = splitmix64(seed ^ splitmix64(case));
        let mut state = [0u64; 4];
        for s in &mut state {
            sm = splitmix64(sm);
            *s = sm;
        }
        TestRng { state }
    }

    /// Next raw 64-bit draw (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.state = [s0, s1, s2, s3];
        result
    }

    /// Uniform draw in `[0, n)` (widening multiply; `n` must be nonzero).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ----------------------------------------------------------------------
// Strategies
// ----------------------------------------------------------------------

/// A generator of random values of type [`Strategy::Value`].
///
/// Unlike real proptest there is no value tree and no shrinking; `sample`
/// produces the final value directly.
pub trait Strategy {
    /// The type of generated values.
    type Value: fmt::Debug;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase this strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V: fmt::Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy yielding a constant value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty => $u:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                self.start.wrapping_add(rng.below(span as u64) as $t)
            }
        }
    )+};
}

signed_range_strategy!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        // Guard the (theoretically possible) rounding up to `end`.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + (rng.unit_f64() as f32) * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// Strategy for any value of a type with a canonical full-range generator.
pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    ArbitraryStrategy(std::marker::PhantomData)
}

/// Types usable with [`any`].
pub trait Arbitrary: fmt::Debug {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
pub struct ArbitraryStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for ArbitraryStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for a `Vec` whose length is uniform in `len` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty vec length range");
        VecStrategy { element, len }
    }

    /// Strategy produced by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Uniform union over type-erased strategies (built by [`prop_oneof!`]).
pub struct OneOf<V> {
    choices: Vec<BoxedStrategy<V>>,
}

impl<V: fmt::Debug> OneOf<V> {
    /// Union of `choices`, each picked with equal probability.
    pub fn new(choices: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { choices }
    }
}

impl<V: fmt::Debug> Strategy for OneOf<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.choices.len() as u64) as usize;
        self.choices[i].sample(rng)
    }
}

// ----------------------------------------------------------------------
// Runner
// ----------------------------------------------------------------------

/// Drive one property: run `config.cases` generated cases, panicking with
/// the rendered inputs on the first failure. Called by the [`proptest!`]
/// macro expansion, not directly by tests.
pub fn run_cases<F>(config: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> (Result<(), TestCaseError>, String),
{
    for i in 0..config.cases as u64 {
        let mut rng = TestRng::for_case(name, i);
        let (result, inputs) = case(&mut rng);
        if let Err(e) = result {
            panic!(
                "property `{name}` failed at case {i}/{}:\n  {e}\n  inputs: {inputs}",
                config.cases
            );
        }
    }
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); ) => {};
    (config = ($cfg:expr);
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(config, stringify!($name), |__proptest_rng| {
                $(let $arg = $crate::Strategy::sample(&($strat), __proptest_rng);)+
                let __proptest_inputs =
                    format!(concat!($(stringify!($arg), " = {:?}  "),+), $(&$arg),+);
                let __proptest_result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                (__proptest_result, __proptest_inputs)
            });
        }
        $crate::__proptest_impl!{ config = ($cfg); $($rest)* }
    };
}

/// Assert inside a property, failing the case (not panicking) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a property, failing the case on mismatch.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r
            )));
        }
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// One-stop imports mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, collection, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };

    /// Alias so `prop::collection::vec(...)`-style paths work.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::for_case("ranges", 0);
        for _ in 0..10_000 {
            let v = (3u64..17).sample(&mut rng);
            assert!((3..17).contains(&v));
            let f = (-2.0f64..2.0).sample(&mut rng);
            assert!((-2.0..2.0).contains(&f));
            let i = (-5i32..5).sample(&mut rng);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let mut rng = crate::TestRng::for_case("vec", 1);
        for _ in 0..1000 {
            let v = collection::vec(0u8..4, 2..9).sample(&mut rng);
            assert!((2..9).contains(&v.len()));
            assert!(v.iter().all(|&b| b < 4));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let strat = prop_oneof![Just(1u64), Just(2u64), (10u64..20).prop_map(|v| v)];
        let mut rng = crate::TestRng::for_case("oneof", 2);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            match strat.sample(&mut rng) {
                1 => seen[0] = true,
                2 => seen[1] = true,
                10..=19 => seen[2] = true,
                other => panic!("impossible draw {other}"),
            }
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn cases_are_deterministic_per_name_and_index() {
        let a: Vec<u64> = {
            let mut r = crate::TestRng::for_case("p", 7);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = crate::TestRng::for_case("p", 7);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = crate::TestRng::for_case("p", 8);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro end to end: params, prop_assert, early Ok return.
        fn macro_roundtrip(x in 0u64..100, flip in any::<bool>()) {
            if flip {
                return Ok(());
            }
            prop_assert!(x < 100, "x = {x}");
            prop_assert_eq!(x + 1, x + 1);
        }
    }
}
