//! The paper's experiment topologies (Figures 1–11), as ready-to-run
//! scenario constructors.
//!
//! Each constructor takes the MAC under test — the tables compare protocol
//! variants on a fixed topology — and a seed. Coordinates are in feet with
//! base stations at z = 6 ft and pads at z = 0 (the paper places pads 6 ft
//! below base-station height); the reception range is 10 ft, so the layouts
//! below realize exactly the in-range/out-of-range graphs drawn in the
//! paper. Unit tests at the bottom verify every required connectivity
//! relation.

use macaw_phy::Point;
use macaw_sim::SimTime;

use crate::scenario::{Dest, MacKind, Scenario, SourceKind, StreamSpec, TransportKind};
use macaw_transport::TcpConfig;

/// Base-station height (ft).
const BASE_Z: f64 = 6.0;

fn base(x: f64, y: f64) -> Point {
    Point::new(x, y, BASE_Z)
}

fn pad(x: f64, y: f64) -> Point {
    Point::new(x, y, 0.0)
}

/// Figure 1, hidden-terminal workload: A → B while C → B, with A and C out
/// of range of each other. Under CSMA both collide at B; MACA's CTS from B
/// silences C.
pub fn figure1_hidden(mac: MacKind, seed: u64) -> Scenario {
    let mut sc = Scenario::new(seed);
    let a = sc.add_station("A", pad(0.0, 0.0), mac);
    let b = sc.add_station("B", pad(8.0, 0.0), mac);
    let c = sc.add_station("C", pad(16.0, 0.0), mac);
    sc.add_udp_stream("A-B", a, b, 64, 512);
    sc.add_udp_stream("C-B", c, b, 64, 512);
    sc
}

/// Figure 1, exposed-terminal workload: B → A while C → D, with C in range
/// of B only. Under CSMA, C needlessly defers to B; under MACA both streams
/// can run (the receivers do not overlap).
pub fn figure1_exposed(mac: MacKind, seed: u64) -> Scenario {
    let mut sc = Scenario::new(seed);
    let a = sc.add_station("A", pad(0.0, 0.0), mac);
    let b = sc.add_station("B", pad(8.0, 0.0), mac);
    let c = sc.add_station("C", pad(16.0, 0.0), mac);
    let d = sc.add_station("D", pad(24.0, 0.0), mac);
    sc.add_udp_stream("B-A", b, a, 64, 512);
    sc.add_udp_stream("C-D", c, d, 64, 512);
    sc
}

/// Figure 2 / Table 1: one cell, two pads each saturating the channel
/// toward the base station (64 pps UDP).
pub fn figure2(mac: MacKind, seed: u64) -> Scenario {
    let mut sc = Scenario::new(seed);
    let b = sc.add_station("B", base(0.0, 0.0), mac);
    let p1 = sc.add_station("P1", pad(-3.0, 0.0), mac);
    let p2 = sc.add_station("P2", pad(3.0, 0.0), mac);
    sc.add_udp_stream("P1-B", p1, b, 64, 512);
    sc.add_udp_stream("P2-B", p2, b, 64, 512);
    sc
}

/// Figure 3 / Table 2: one cell, six pads → base station, 32 pps UDP each.
pub fn figure3(mac: MacKind, seed: u64) -> Scenario {
    let mut sc = Scenario::new(seed);
    let b = sc.add_station("B", base(0.0, 0.0), mac);
    // Six pads on a 4 ft circle: every pair is within 8 ft.
    let positions = [
        (4.0, 0.0),
        (2.0, 3.5),
        (-2.0, 3.5),
        (-4.0, 0.0),
        (-2.0, -3.5),
        (2.0, -3.5),
    ];
    for (i, (x, y)) in positions.iter().enumerate() {
        let p = sc.add_station(&format!("P{}", i + 1), pad(*x, *y), mac);
        sc.add_udp_stream(&format!("P{}-B", i + 1), p, b, 32, 512);
    }
    sc
}

/// Figure 4 / Table 3: one cell; the base sends to two pads while a third
/// pad sends to the base, 32 pps UDP each. Exposes the single-queue vs
/// per-stream-queue allocation difference (§3.2).
pub fn figure4(mac: MacKind, seed: u64) -> Scenario {
    let mut sc = Scenario::new(seed);
    let b = sc.add_station("B", base(0.0, 0.0), mac);
    let p1 = sc.add_station("P1", pad(4.0, 0.0), mac);
    let p2 = sc.add_station("P2", pad(-2.0, 3.5), mac);
    let p3 = sc.add_station("P3", pad(-2.0, -3.5), mac);
    sc.add_udp_stream("B-P1", b, p1, 32, 512);
    sc.add_udp_stream("B-P2", b, p2, 32, 512);
    sc.add_udp_stream("P3-B", p3, b, 32, 512);
    sc
}

/// Table 4: one pad → base TCP stream (64 pps offered) under intermittent
/// noise: every packet is corrupted at its receiver with probability
/// `error_rate` (§3.3.1's model).
pub fn table4(mac: MacKind, seed: u64, error_rate: f64) -> Scenario {
    let mut sc = Scenario::new(seed);
    let b = sc.add_station("B", base(0.0, 0.0), mac);
    let p = sc.add_station("P", pad(3.0, 0.0), mac);
    sc.set_rx_error_rate(b, error_rate);
    sc.set_rx_error_rate(p, error_rate);
    sc.add_tcp_stream("P-B", p, b, 64, 512);
    sc
}

/// Stagger between the established stream and the late-starting stream in
/// the two-cell experiments. The paper's Figures 5-7 dynamics all begin
/// with "one of the streams wins the initial contention period"; starting
/// the second stream a few seconds later makes the winner deterministic,
/// so the tables measure whether the protocol can recover fairness from
/// that disadvantaged position (the paper's actual question).
pub const TWO_CELL_STAGGER: SimTime = SimTime::from_nanos(5_000_000_000);

/// The two-cell geometry shared by Figures 5–7: two pad/base pairs whose
/// pads are in range of each other, every other cross-cell pair out of
/// range.
fn two_cell(mac: MacKind, seed: u64) -> (Scenario, [usize; 4]) {
    let mut sc = Scenario::new(seed);
    let b1 = sc.add_station("B1", base(0.0, 0.0), mac);
    let p1 = sc.add_station("P1", pad(7.0, 0.0), mac);
    let p2 = sc.add_station("P2", pad(13.0, 0.0), mac);
    let b2 = sc.add_station("B2", base(20.0, 0.0), mac);
    (sc, [b1, p1, p2, b2])
}

/// Figure 5 / Table 5: each pad sends to its own base station (64 pps UDP);
/// each pad is an exposed terminal for the other stream. The DS packet is
/// what lets the losing pad find the contention periods (§3.3.2).
pub fn figure5(mac: MacKind, seed: u64) -> Scenario {
    let (mut sc, [b1, p1, p2, b2]) = two_cell(mac, seed);
    sc.add_udp_stream("P1-B1", p1, b1, 64, 512);
    sc.add_stream(StreamSpec {
        name: "P2-B2".to_string(),
        src: p2,
        dst: Dest::Station(b2),
        transport: TransportKind::Udp,
        source: SourceKind::Cbr { pps: 64 },
        bytes: 512,
        start: TWO_CELL_STAGGER,
        stop: None,
    });
    sc
}

/// Figure 6 / Table 6: the Figure-5 configuration with both flows reversed
/// (base → pad), so the *receivers* overhear each other. RRTS lets the
/// blocked receiver contend on its sender's behalf (§3.3.3).
pub fn figure6(mac: MacKind, seed: u64) -> Scenario {
    let (mut sc, [b1, p1, p2, b2]) = two_cell(mac, seed);
    sc.add_udp_stream("B2-P2", b2, p2, 64, 512);
    sc.add_stream(StreamSpec {
        name: "B1-P1".to_string(),
        src: b1,
        dst: Dest::Station(p1),
        transport: TransportKind::Udp,
        source: SourceKind::Cbr { pps: 64 },
        bytes: 512,
        start: TWO_CELL_STAGGER,
        stop: None,
    });
    sc
}

/// Figure 7 / Table 7: B1 → P1 while P2 → B2. P1 is drowned by P2's data
/// transmissions, so it never cleanly hears B1's RTS and cannot even send
/// an RRTS — the configuration the paper leaves unsolved.
pub fn figure7(mac: MacKind, seed: u64) -> Scenario {
    let (mut sc, [b1, p1, p2, b2]) = two_cell(mac, seed);
    sc.add_udp_stream("P2-B2", p2, b2, 64, 512);
    sc.add_stream(StreamSpec {
        name: "B1-P1".to_string(),
        src: b1,
        dst: Dest::Station(p1),
        transport: TransportKind::Udp,
        source: SourceKind::Cbr { pps: 64 },
        bytes: 512,
        start: TWO_CELL_STAGGER,
        stop: None,
    });
    sc
}

/// Figure 8 (no table; §3.4's backoff-leakage discussion): congested cell
/// C1 (four pads) adjoining quiet cell C2 (two pads), with the border pads
/// of both cells in range of each other so copied backoff values "leak"
/// between cells. All pads saturate toward their own base (64 pps UDP).
pub fn figure8(mac: MacKind, seed: u64) -> Scenario {
    let mut sc = Scenario::new(seed);
    let b1 = sc.add_station("B1", base(0.0, 0.0), mac);
    let p1 = sc.add_station("P1", pad(5.0, 1.0), mac);
    let p2 = sc.add_station("P2", pad(5.0, -1.0), mac);
    let p3 = sc.add_station("P3", pad(6.0, 1.0), mac);
    let p4 = sc.add_station("P4", pad(6.0, -1.0), mac);
    let b2 = sc.add_station("B2", base(19.0, 0.0), mac);
    let p5 = sc.add_station("P5", pad(12.0, 0.0), mac);
    let p6 = sc.add_station("P6", pad(23.0, 0.0), mac);
    for (name, p, b) in [
        ("P1-B1", p1, b1),
        ("P2-B1", p2, b1),
        ("P3-B1", p3, b1),
        ("P4-B1", p4, b1),
        ("P5-B2", p5, b2),
        ("P6-B2", p6, b2),
    ] {
        sc.add_udp_stream(name, p, b, 64, 512);
    }
    sc
}

/// Figure 9 / Table 8: one cell, three pads with bidirectional 32 pps UDP
/// streams; pad P1 is switched off at `off_at`. With a single backoff
/// counter the dead destination poisons every stream; per-destination
/// backoff isolates it (§3.4).
pub fn figure9(mac: MacKind, seed: u64, off_at: SimTime) -> Scenario {
    let mut sc = Scenario::new(seed);
    let b = sc.add_station("B1", base(0.0, 0.0), mac);
    let p1 = sc.add_station("P1", pad(4.0, 0.0), mac);
    let p2 = sc.add_station("P2", pad(-2.0, 3.5), mac);
    let p3 = sc.add_station("P3", pad(-2.0, -3.5), mac);
    for (name, s, d) in [
        ("B1-P1", b, p1),
        ("P1-B1", p1, b),
        ("B1-P2", b, p2),
        ("P2-B1", p2, b),
        ("B1-P3", b, p3),
        ("P3-B1", p3, b),
    ] {
        sc.add_udp_stream(name, s, d, 32, 512);
    }
    sc.power_off_at(off_at, p1);
    sc
}

/// Figure 10 / Table 10: three cells. C1 holds four pads near the C1–C2
/// border; C2 holds P5 near that border; P6 straddles the C2–C3 border (in
/// range of both B2 and B3). P1–P5 run bidirectional 32 pps UDP streams
/// with their own base; P6 sends to B3.
pub fn figure10(mac: MacKind, seed: u64) -> Scenario {
    let mut sc = Scenario::new(seed);
    let b1 = sc.add_station("B1", base(0.0, 0.0), mac);
    let p1 = sc.add_station("P1", pad(6.0, 1.0), mac);
    let p2 = sc.add_station("P2", pad(6.0, -1.0), mac);
    let p3 = sc.add_station("P3", pad(6.0, 3.0), mac);
    let p4 = sc.add_station("P4", pad(6.0, -3.0), mac);
    // P5 sits directly under B2, so its exchanges with B2 are
    // capture-protected (≥10 dB) against both the straddler P6 and the C1
    // border pads — the paper's nanocell premise that in-cell links survive
    // edge interference. P6 straddles the C2-C3 border at the very edge of
    // B2's cell.
    let b2 = sc.add_station("B2", base(15.0, 0.0), mac);
    let p5 = sc.add_station("P5", pad(15.0, 0.0), mac);
    let b3 = sc.add_station("B3", base(27.0, -8.0), mac);
    let p6 = sc.add_station("P6", pad(21.5, -4.5), mac);
    for (name, s, d) in [
        ("P1-B1", p1, b1),
        ("P2-B1", p2, b1),
        ("P3-B1", p3, b1),
        ("P4-B1", p4, b1),
        ("B1-P1", b1, p1),
        ("B1-P2", b1, p2),
        ("B1-P3", b1, p3),
        ("B1-P4", b1, p4),
        ("P5-B2", p5, b2),
        ("B2-P5", b2, p5),
        ("P6-B3", p6, b3),
    ] {
        sc.add_udp_stream(name, s, d, 32, 512);
    }
    sc
}

/// Figure 11 / Table 11: the four-cell PARC office slice. C1 is an open
/// area with four pads and a noise source (packet error rate 0.01 at every
/// C1 station); C2 and C3 are offices (P6, P5); C4 is the coffee room into
/// which P7 arrives at `arrive_at` (its TCP stream starts on arrival).
/// Every pad runs a 32 pps TCP stream to its own base. Stated overlaps:
/// P4, P5 and P6 hear each other; P7 (once arrived) hears P1 and P3.
pub fn figure11(mac: MacKind, seed: u64, arrive_at: SimTime) -> Scenario {
    let mut sc = Scenario::new(seed);
    // C1, the open area.
    let b1 = sc.add_station("B1", base(0.0, 0.0), mac);
    let p1 = sc.add_station("P1", pad(-1.0, -3.0), mac);
    let p2 = sc.add_station("P2", pad(-3.0, 3.0), mac);
    let p3 = sc.add_station("P3", pad(2.0, -3.0), mac);
    let p4 = sc.add_station("P4", pad(4.0, 2.0), mac);
    // C2 (office, north-east) and C3 (office, south-east).
    let b2 = sc.add_station("B2", base(12.0, 14.0), mac);
    let p6 = sc.add_station("P6", pad(8.0, 8.0), mac);
    let b3 = sc.add_station("B3", base(16.0, 2.0), mac);
    let p5 = sc.add_station("P5", pad(10.0, 4.0), mac);
    // C4 (coffee room, south). P7 starts far away and is carried in.
    let b4 = sc.add_station("B4", base(0.0, -15.0), mac);
    let p7 = sc.add_station("P7", pad(0.0, -40.0), mac);

    // The whiteboard noise source: per-packet error 0.01 at C1 stations.
    for s in [b1, p1, p2, p3, p4] {
        sc.set_rx_error_rate(s, 0.01);
    }

    for (name, s, d) in [
        ("P1-B1", p1, b1),
        ("P2-B1", p2, b1),
        ("P3-B1", p3, b1),
        ("P4-B1", p4, b1),
        ("P5-B3", p5, b3),
        ("P6-B2", p6, b2),
    ] {
        sc.add_tcp_stream(name, s, d, 32, 512);
    }
    // P7 is mobile: it arrives (and its stream starts) at `arrive_at`.
    sc.move_station_at(arrive_at, p7, pad(0.0, -9.0));
    sc.add_stream(StreamSpec {
        name: "P7-B4".to_string(),
        src: p7,
        dst: Dest::Station(b4),
        transport: TransportKind::Tcp(TcpConfig::default()),
        source: SourceKind::Cbr { pps: 32 },
        bytes: 512,
        start: arrive_at,
        stop: None,
    });
    sc
}

#[cfg(test)]
mod tests {
    use super::*;
    use macaw_phy::{Medium, StationId};
    use macaw_sim::SimDuration;

    /// Assert the exact set of in-range pairs (by station index).
    fn assert_links(sc: Scenario, expected_in_range: &[(usize, usize)]) {
        let net = sc.build().unwrap();
        let n = net.station_count();
        for a in 0..n {
            for b in (a + 1)..n {
                let expect = expected_in_range.contains(&(a, b))
                    || expected_in_range.contains(&(b, a));
                let got = net.medium().in_range(StationId(a), StationId(b));
                assert_eq!(
                    got, expect,
                    "stations {a} and {b}: expected in_range={expect}"
                );
            }
        }
    }

    fn all_pairs_connected(sc: Scenario) {
        let net = sc.build().unwrap();
        let n = net.station_count();
        for a in 0..n {
            for b in (a + 1)..n {
                assert!(
                    net.medium().in_range(StationId(a), StationId(b)),
                    "stations {a} and {b} must be in range"
                );
            }
        }
    }

    #[test]
    fn figure1_connectivity_is_a_line() {
        // A-B-C-D: only adjacent stations hear each other.
        assert_links(
            figure1_exposed(MacKind::Maca, 1),
            &[(0, 1), (1, 2), (2, 3)],
        );
    }

    #[test]
    fn figure2_is_a_single_cell() {
        assert_links(figure2(MacKind::Maca, 1), &[(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn figure3_is_fully_connected() {
        all_pairs_connected(figure3(MacKind::Maca, 1));
    }

    #[test]
    fn figure4_is_fully_connected() {
        all_pairs_connected(figure4(MacKind::Maca, 1));
    }

    #[test]
    fn two_cell_geometry_matches_figure5() {
        // Stations: B1=0, P1=1, P2=2, B2=3.
        assert_links(figure5(MacKind::Macaw, 1), &[(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn figure8_border_pads_leak_but_bases_are_isolated() {
        // Stations: B1=0, P1..P4=1..4, B2=5, P5=6, P6=7.
        assert_links(
            figure8(MacKind::Macaw, 1),
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (1, 2),
                (1, 3),
                (1, 4),
                (2, 3),
                (2, 4),
                (3, 4),
                (1, 6),
                (2, 6),
                (3, 6),
                (4, 6),
                (5, 6),
                (5, 7),
            ],
        );
    }

    #[test]
    fn figure9_is_a_single_cell() {
        all_pairs_connected(figure9(MacKind::Macaw, 1, SimTime::ZERO));
    }

    #[test]
    fn figure10_connectivity() {
        // B1=0, P1..P4=1..4, B2=5, P5=6, B3=7, P6=8.
        assert_links(
            figure10(MacKind::Macaw, 1),
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (1, 2),
                (1, 3),
                (1, 4),
                (2, 3),
                (2, 4),
                (3, 4),
                (1, 6),
                (2, 6),
                (3, 6),
                (4, 6),
                (5, 6),
                (5, 8),
                (7, 8),
                // The straddler P6 is at the edge of B2's cell and also
                // hears P5 (both live in the narrow C2 region).
                (6, 8),
            ],
        );
    }

    #[test]
    fn figure10_p5_is_capture_protected_from_the_straddler() {
        // P5's signal at B2 must exceed P6's by the 10 dB capture margin,
        // so the straddler cannot destroy in-cell exchanges (§2.1).
        let net = figure10(MacKind::Macaw, 1).build().unwrap();
        let prop = net.medium().propagation();
        let d_p5 = net.medium().position(StationId(6)).distance(net.medium().position(StationId(5)));
        let d_p6 = net.medium().position(StationId(8)).distance(net.medium().position(StationId(5)));
        let p5 = prop.power_at_distance(d_p5);
        let p6 = prop.power_at_distance(d_p6);
        assert!(prop.clean(p5, p6), "P5 ({d_p5:.2} ft) must capture over P6 ({d_p6:.2} ft)");
    }

    #[test]
    fn figure11_connectivity_before_arrival() {
        // B1=0, P1=1, P2=2, P3=3, P4=4, B2=5, P6=6, B3=7, P5=8, B4=9, P7=10.
        assert_links(
            figure11(MacKind::Macaw, 1, SimTime::ZERO + SimDuration::from_secs(300)),
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (1, 2),
                (1, 3),
                (1, 4),
                (2, 3),
                (2, 4),
                (3, 4),
                (5, 6),
                (7, 8),
                (4, 6),
                (4, 8),
                (6, 8),
            ],
        );
    }

    #[test]
    fn figure11_p7_hears_p1_p3_and_b4_after_arrival() {
        let arrive = SimTime::ZERO + SimDuration::from_millis(10);
        let sc = figure11(MacKind::Macaw, 1, arrive);
        let mut net = sc.build().unwrap();
        net.run_until(arrive + SimDuration::from_millis(1)).unwrap();
        let m = net.medium();
        let p7 = StationId(10);
        assert!(m.in_range(p7, StationId(9)), "P7-B4");
        assert!(m.in_range(p7, StationId(1)), "P7-P1");
        assert!(m.in_range(p7, StationId(3)), "P7-P3");
        assert!(!m.in_range(p7, StationId(2)), "P7 must not hear P2");
        assert!(!m.in_range(p7, StationId(4)), "P7 must not hear P4");
        assert!(!m.in_range(p7, StationId(0)), "P7 must not hear B1");
    }
}
