//! Run statistics: per-stream throughput, fairness and utilization.
//!
//! Every table in the paper reports per-stream throughput in packets per
//! second over the post-warm-up window ("Simulations are typically run
//! between 500 and 2000 seconds, with a warmup period of 50 seconds").
//! [`RunReport`] carries exactly those numbers, plus Jain's fairness index
//! (the standard quantification of the paper's informal "fair allocation"
//! criterion) and channel utilization.

use macaw_mac::wmac::MacStats;
use macaw_sim::QueueStats;

/// Per-stream measurements over the post-warm-up window.
#[derive(Clone, Debug, PartialEq)]
pub struct StreamReport {
    /// Stream label (e.g. "P1-B").
    pub name: String,
    /// Source station name.
    pub src: String,
    /// Destination station name (or `mcast:<group>`).
    pub dst: String,
    /// Application packets generated in the window.
    pub offered: u64,
    /// Application packets delivered at the sink in the window.
    pub delivered: u64,
    /// Offered load in packets per second.
    pub offered_pps: f64,
    /// Delivered throughput in packets per second — the paper's metric.
    pub throughput_pps: f64,
    /// Delivered payload bytes in the window.
    pub delivered_bytes: u64,
}

/// The result of one simulation run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunReport {
    /// Length of the measurement window in seconds.
    pub measured_secs: f64,
    /// Per-stream results, in stream declaration order.
    pub streams: Vec<StreamReport>,
    /// Station names, by station index.
    pub station_names: Vec<String>,
    /// Per-station MAC counters (None for MACs without them).
    pub mac_stats: Vec<Option<MacStats>>,
    /// Per-station count of packets the MAC gave up on after exhausting
    /// its retries (the "give up and report the drop" terminal path).
    pub mac_drops: Vec<u64>,
    /// Seconds of post-warm-up air time occupied by DATA frames.
    pub data_air_secs: f64,
    /// Seconds of post-warm-up air time occupied by all frames.
    pub total_air_secs: f64,
    /// Total simulation events processed over the whole run (including
    /// warm-up) — the numerator of engine events-per-second throughput.
    pub events_processed: u64,
    /// Future-event-list operation counters (schedules, pops,
    /// cancellations, live-depth high-water mark). Pure functions of the
    /// event trajectory, so they are identical across FEL backends — the
    /// queue-equivalence tests compare them bitwise along with everything
    /// else. The high-water mark is the **sum of per-island high-water
    /// marks** (see `Network::queue_stats`), which makes it decompose over
    /// coupling islands and reproduce bitwise under the sharded engine too.
    pub queue_stats: QueueStats,
}

impl RunReport {
    /// Throughput of the stream named `name`, in packets per second.
    ///
    /// # Panics
    /// Panics if no stream has that name (a typo in an experiment is a bug
    /// worth failing loudly on).
    pub fn throughput(&self, name: &str) -> f64 {
        self.stream(name).throughput_pps
    }

    /// The full report for the stream named `name`.
    pub fn stream(&self, name: &str) -> &StreamReport {
        self.streams
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("no stream named {name:?}"))
    }

    /// Sum of all stream throughputs, in packets per second.
    pub fn total_throughput(&self) -> f64 {
        self.streams.iter().map(|s| s.throughput_pps).sum()
    }

    /// Jain's fairness index over all streams:
    /// `(Σx)² / (n · Σx²)` — 1.0 is perfectly fair, 1/n is a single winner.
    pub fn jain_fairness(&self) -> f64 {
        jain(&self
            .streams
            .iter()
            .map(|s| s.throughput_pps)
            .collect::<Vec<_>>())
    }

    /// Jain's fairness index over a named subset of streams.
    pub fn jain_fairness_of(&self, names: &[&str]) -> f64 {
        jain(&names
            .iter()
            .map(|n| self.throughput(n))
            .collect::<Vec<_>>())
    }

    /// Fraction of the measurement window occupied by DATA frames
    /// (the paper's "channel capacity" percentages in §3.5).
    pub fn data_utilization(&self) -> f64 {
        if self.measured_secs > 0.0 {
            self.data_air_secs / self.measured_secs
        } else {
            0.0
        }
    }

    /// Render the per-stream table as aligned text (the format the benches
    /// print next to the paper's numbers).
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<12} {:>12} {:>12} {:>12}\n",
            "stream", "offered/s", "delivered/s", "delivered"
        ));
        for s in &self.streams {
            out.push_str(&format!(
                "{:<12} {:>12.2} {:>12.2} {:>12}\n",
                s.name, s.offered_pps, s.throughput_pps, s.delivered
            ));
        }
        out.push_str(&format!(
            "{:<12} {:>12.2} {:>12.2}\n",
            "TOTAL",
            self.streams.iter().map(|s| s.offered_pps).sum::<f64>(),
            self.total_throughput()
        ));
        out
    }
}

/// Escape a name for the one-token-per-field cache text format.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '%' => out.push_str("%25"),
            ' ' => out.push_str("%20"),
            '\t' => out.push_str("%09"),
            '\n' => out.push_str("%0A"),
            _ => out.push(c),
        }
    }
    out
}

fn unesc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        let code: String = chars.by_ref().take(2).collect();
        match code.as_str() {
            "25" => out.push('%'),
            "20" => out.push(' '),
            "09" => out.push('\t'),
            "0A" => out.push('\n'),
            other => {
                // Unknown escape: keep it verbatim (never produced by esc).
                out.push('%');
                out.push_str(other);
            }
        }
    }
    out
}

/// The cache text format version. Bump when the format (or the set of
/// fields in [`RunReport`]) changes, so stale cache entries from an older
/// build parse-fail into a miss instead of deserializing garbage.
const CACHE_FORMAT: &str = "macaw-runreport v3";

impl RunReport {
    /// Serialize for the fingerprint-keyed run cache: a line-oriented text
    /// form that round-trips *exactly* — every f64 is printed as its
    /// shortest round-trippable decimal (Rust's `{:?}`), so
    /// `from_cache_text(to_cache_text(r)) == r` down to the bit patterns.
    pub fn to_cache_text(&self) -> String {
        let mut out = String::new();
        out.push_str(CACHE_FORMAT);
        out.push('\n');
        out.push_str(&format!("measured_secs {:?}\n", self.measured_secs));
        for s in &self.streams {
            out.push_str(&format!(
                "stream {} {} {} {} {} {:?} {:?} {}\n",
                esc(&s.name),
                esc(&s.src),
                esc(&s.dst),
                s.offered,
                s.delivered,
                s.offered_pps,
                s.throughput_pps,
                s.delivered_bytes
            ));
        }
        for n in &self.station_names {
            out.push_str(&format!("station {}\n", esc(n)));
        }
        for m in &self.mac_stats {
            match m {
                None => out.push_str("macstat -\n"),
                Some(m) => out.push_str(&format!(
                    "macstat {} {} {} {} {} {} {} {} {} {} {} {} {} {}\n",
                    m.enqueued,
                    m.refused,
                    m.rts_sent,
                    m.cts_sent,
                    m.ds_sent,
                    m.data_sent,
                    m.ack_sent,
                    m.rrts_sent,
                    m.nack_sent,
                    m.rts_timeouts,
                    m.ack_timeouts,
                    m.data_delivered,
                    m.packets_sent_ok,
                    m.packets_dropped
                )),
            }
        }
        out.push_str("mac_drops");
        for d in &self.mac_drops {
            out.push_str(&format!(" {d}"));
        }
        out.push('\n');
        out.push_str(&format!(
            "air {:?} {:?}\n",
            self.data_air_secs, self.total_air_secs
        ));
        out.push_str(&format!("events {}\n", self.events_processed));
        out.push_str(&format!(
            "queue {} {} {} {}\n",
            self.queue_stats.scheduled,
            self.queue_stats.popped,
            self.queue_stats.cancelled,
            self.queue_stats.high_water
        ));
        out.push_str("end\n");
        out
    }

    /// Parse the [`RunReport::to_cache_text`] form. Any structural problem
    /// — wrong version header, malformed line, truncated file (an
    /// interrupted write) — is an `Err`, which the run cache treats as a
    /// miss and recomputes.
    pub fn from_cache_text(text: &str) -> Result<RunReport, String> {
        fn num<T: std::str::FromStr>(tok: Option<&str>, what: &str) -> Result<T, String> {
            tok.ok_or_else(|| format!("missing {what}"))?
                .parse()
                .map_err(|_| format!("malformed {what}"))
        }
        let mut lines = text.lines();
        if lines.next() != Some(CACHE_FORMAT) {
            return Err("bad cache format header".to_string());
        }
        let mut report = RunReport {
            measured_secs: 0.0,
            streams: Vec::new(),
            station_names: Vec::new(),
            mac_stats: Vec::new(),
            mac_drops: Vec::new(),
            data_air_secs: 0.0,
            total_air_secs: 0.0,
            events_processed: 0,
            queue_stats: QueueStats::default(),
        };
        let mut complete = false;
        for line in lines {
            let mut t = line.split(' ');
            match t.next() {
                Some("measured_secs") => report.measured_secs = num(t.next(), "measured_secs")?,
                Some("stream") => report.streams.push(StreamReport {
                    name: unesc(t.next().ok_or("missing stream name")?),
                    src: unesc(t.next().ok_or("missing stream src")?),
                    dst: unesc(t.next().ok_or("missing stream dst")?),
                    offered: num(t.next(), "offered")?,
                    delivered: num(t.next(), "delivered")?,
                    offered_pps: num(t.next(), "offered_pps")?,
                    throughput_pps: num(t.next(), "throughput_pps")?,
                    delivered_bytes: num(t.next(), "delivered_bytes")?,
                }),
                Some("station") => report
                    .station_names
                    .push(unesc(t.next().ok_or("missing station name")?)),
                Some("macstat") => match t.clone().next() {
                    Some("-") => report.mac_stats.push(None),
                    _ => report.mac_stats.push(Some(MacStats {
                        enqueued: num(t.next(), "enqueued")?,
                        refused: num(t.next(), "refused")?,
                        rts_sent: num(t.next(), "rts_sent")?,
                        cts_sent: num(t.next(), "cts_sent")?,
                        ds_sent: num(t.next(), "ds_sent")?,
                        data_sent: num(t.next(), "data_sent")?,
                        ack_sent: num(t.next(), "ack_sent")?,
                        rrts_sent: num(t.next(), "rrts_sent")?,
                        nack_sent: num(t.next(), "nack_sent")?,
                        rts_timeouts: num(t.next(), "rts_timeouts")?,
                        ack_timeouts: num(t.next(), "ack_timeouts")?,
                        data_delivered: num(t.next(), "data_delivered")?,
                        packets_sent_ok: num(t.next(), "packets_sent_ok")?,
                        packets_dropped: num(t.next(), "packets_dropped")?,
                    })),
                },
                Some("mac_drops") => {
                    for tok in t {
                        report.mac_drops.push(num(Some(tok), "mac_drops entry")?);
                    }
                }
                Some("air") => {
                    report.data_air_secs = num(t.next(), "data_air_secs")?;
                    report.total_air_secs = num(t.next(), "total_air_secs")?;
                }
                Some("events") => report.events_processed = num(t.next(), "events")?,
                Some("queue") => {
                    report.queue_stats = QueueStats {
                        scheduled: num(t.next(), "queue scheduled")?,
                        popped: num(t.next(), "queue popped")?,
                        cancelled: num(t.next(), "queue cancelled")?,
                        high_water: num(t.next(), "queue high_water")?,
                    }
                }
                Some("end") => {
                    complete = true;
                    break;
                }
                other => return Err(format!("unknown cache line {other:?}")),
            }
        }
        if !complete {
            return Err("truncated cache entry".to_string());
        }
        Ok(report)
    }
}

/// Jain's fairness index of a throughput vector.
pub fn jain(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sum_sq: f64 = xs.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        // All-zero allocation: degenerate but conventionally "fair".
        return 1.0;
    }
    (sum * sum) / (xs.len() as f64 * sum_sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_of_equal_allocation_is_one() {
        assert!((jain(&[5.0, 5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jain_of_single_winner_is_one_over_n() {
        let j = jain(&[10.0, 0.0, 0.0, 0.0]);
        assert!((j - 0.25).abs() < 1e-12);
    }

    #[test]
    fn jain_handles_edge_cases() {
        assert_eq!(jain(&[]), 1.0);
        assert_eq!(jain(&[0.0, 0.0]), 1.0);
        assert!((jain(&[7.5]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jain_is_scale_invariant() {
        let a = jain(&[1.0, 2.0, 3.0]);
        let b = jain(&[10.0, 20.0, 30.0]);
        assert!((a - b).abs() < 1e-12);
    }

    fn report_with(tputs: &[(&str, f64)]) -> RunReport {
        RunReport {
            measured_secs: 10.0,
            streams: tputs
                .iter()
                .map(|(n, t)| StreamReport {
                    name: n.to_string(),
                    src: "s".into(),
                    dst: "d".into(),
                    offered: 0,
                    delivered: (t * 10.0) as u64,
                    offered_pps: 64.0,
                    throughput_pps: *t,
                    delivered_bytes: 0,
                })
                .collect(),
            station_names: vec![],
            mac_stats: vec![],
            mac_drops: vec![],
            data_air_secs: 4.0,
            total_air_secs: 5.0,
            events_processed: 0,
            queue_stats: QueueStats::default(),
        }
    }

    #[test]
    fn report_lookup_and_totals() {
        let r = report_with(&[("a", 20.0), ("b", 30.0)]);
        assert_eq!(r.throughput("a"), 20.0);
        assert_eq!(r.total_throughput(), 50.0);
        assert!((r.jain_fairness_of(&["a", "b"]) - jain(&[20.0, 30.0])).abs() < 1e-12);
        assert!((r.data_utilization() - 0.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no stream named")]
    fn unknown_stream_name_panics() {
        let r = report_with(&[("a", 20.0)]);
        let _ = r.throughput("nope");
    }

    #[test]
    fn cache_text_roundtrips_bitwise() {
        let mut r = report_with(&[("P1-B", 23.82), ("error 0.001", 1.0 / 3.0)]);
        r.station_names = vec!["B".into(), "P 1".into()];
        r.mac_stats = vec![
            None,
            Some(MacStats {
                enqueued: 1,
                refused: 2,
                rts_sent: 3,
                cts_sent: 4,
                ds_sent: 5,
                data_sent: 6,
                ack_sent: 7,
                rrts_sent: 8,
                nack_sent: 9,
                rts_timeouts: 10,
                ack_timeouts: 11,
                data_delivered: 12,
                packets_sent_ok: 13,
                packets_dropped: 14,
            }),
        ];
        r.mac_drops = vec![0, 7];
        r.events_processed = 123_456;
        r.queue_stats = QueueStats {
            scheduled: 9,
            popped: 8,
            cancelled: 7,
            high_water: 6,
        };
        let back = RunReport::from_cache_text(&r.to_cache_text()).unwrap();
        assert_eq!(r, back);
        // Debug equality is f64 bit equality (shortest round-trip floats).
        assert_eq!(format!("{r:?}"), format!("{back:?}"));
    }

    #[test]
    fn cache_text_rejects_garbage_and_truncation() {
        assert!(RunReport::from_cache_text("not a report").is_err());
        let full = report_with(&[("a", 1.5)]).to_cache_text();
        // Drop the "end" terminator: an interrupted write must not parse.
        let truncated = full.trim_end_matches("end\n");
        assert!(RunReport::from_cache_text(truncated).is_err());
        // A stale-format header must parse-fail into a miss.
        let wrong_version = full.replacen("v3", "v1", 1);
        assert!(RunReport::from_cache_text(&wrong_version).is_err());
    }

    #[test]
    fn table_renders_all_streams() {
        let r = report_with(&[("a", 20.0), ("b", 30.0)]);
        let t = r.table();
        assert!(t.contains("a") && t.contains("b") && t.contains("TOTAL"));
    }
}
