//! Run statistics: per-stream throughput, fairness and utilization.
//!
//! Every table in the paper reports per-stream throughput in packets per
//! second over the post-warm-up window ("Simulations are typically run
//! between 500 and 2000 seconds, with a warmup period of 50 seconds").
//! [`RunReport`] carries exactly those numbers, plus Jain's fairness index
//! (the standard quantification of the paper's informal "fair allocation"
//! criterion) and channel utilization.

use macaw_mac::wmac::MacStats;
use macaw_sim::QueueStats;

/// Per-stream measurements over the post-warm-up window.
#[derive(Clone, Debug, PartialEq)]
pub struct StreamReport {
    /// Stream label (e.g. "P1-B").
    pub name: String,
    /// Source station name.
    pub src: String,
    /// Destination station name (or `mcast:<group>`).
    pub dst: String,
    /// Application packets generated in the window.
    pub offered: u64,
    /// Application packets delivered at the sink in the window.
    pub delivered: u64,
    /// Offered load in packets per second.
    pub offered_pps: f64,
    /// Delivered throughput in packets per second — the paper's metric.
    pub throughput_pps: f64,
    /// Delivered payload bytes in the window.
    pub delivered_bytes: u64,
}

/// The result of one simulation run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunReport {
    /// Length of the measurement window in seconds.
    pub measured_secs: f64,
    /// Per-stream results, in stream declaration order.
    pub streams: Vec<StreamReport>,
    /// Station names, by station index.
    pub station_names: Vec<String>,
    /// Per-station MAC counters (None for MACs without them).
    pub mac_stats: Vec<Option<MacStats>>,
    /// Per-station count of packets the MAC gave up on after exhausting
    /// its retries (the "give up and report the drop" terminal path).
    pub mac_drops: Vec<u64>,
    /// Seconds of post-warm-up air time occupied by DATA frames.
    pub data_air_secs: f64,
    /// Seconds of post-warm-up air time occupied by all frames.
    pub total_air_secs: f64,
    /// Total simulation events processed over the whole run (including
    /// warm-up) — the numerator of engine events-per-second throughput.
    pub events_processed: u64,
    /// Future-event-list operation counters (schedules, pops,
    /// cancellations, live-depth high-water mark). Pure functions of the
    /// event trajectory, so they are identical across FEL backends — the
    /// queue-equivalence tests compare them bitwise along with everything
    /// else.
    pub queue_stats: QueueStats,
}

impl RunReport {
    /// Throughput of the stream named `name`, in packets per second.
    ///
    /// # Panics
    /// Panics if no stream has that name (a typo in an experiment is a bug
    /// worth failing loudly on).
    pub fn throughput(&self, name: &str) -> f64 {
        self.stream(name).throughput_pps
    }

    /// The full report for the stream named `name`.
    pub fn stream(&self, name: &str) -> &StreamReport {
        self.streams
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("no stream named {name:?}"))
    }

    /// Sum of all stream throughputs, in packets per second.
    pub fn total_throughput(&self) -> f64 {
        self.streams.iter().map(|s| s.throughput_pps).sum()
    }

    /// Jain's fairness index over all streams:
    /// `(Σx)² / (n · Σx²)` — 1.0 is perfectly fair, 1/n is a single winner.
    pub fn jain_fairness(&self) -> f64 {
        jain(&self
            .streams
            .iter()
            .map(|s| s.throughput_pps)
            .collect::<Vec<_>>())
    }

    /// Jain's fairness index over a named subset of streams.
    pub fn jain_fairness_of(&self, names: &[&str]) -> f64 {
        jain(&names
            .iter()
            .map(|n| self.throughput(n))
            .collect::<Vec<_>>())
    }

    /// Fraction of the measurement window occupied by DATA frames
    /// (the paper's "channel capacity" percentages in §3.5).
    pub fn data_utilization(&self) -> f64 {
        if self.measured_secs > 0.0 {
            self.data_air_secs / self.measured_secs
        } else {
            0.0
        }
    }

    /// Render the per-stream table as aligned text (the format the benches
    /// print next to the paper's numbers).
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<12} {:>12} {:>12} {:>12}\n",
            "stream", "offered/s", "delivered/s", "delivered"
        ));
        for s in &self.streams {
            out.push_str(&format!(
                "{:<12} {:>12.2} {:>12.2} {:>12}\n",
                s.name, s.offered_pps, s.throughput_pps, s.delivered
            ));
        }
        out.push_str(&format!(
            "{:<12} {:>12.2} {:>12.2}\n",
            "TOTAL",
            self.streams.iter().map(|s| s.offered_pps).sum::<f64>(),
            self.total_throughput()
        ));
        out
    }
}

/// Jain's fairness index of a throughput vector.
pub fn jain(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sum_sq: f64 = xs.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        // All-zero allocation: degenerate but conventionally "fair".
        return 1.0;
    }
    (sum * sum) / (xs.len() as f64 * sum_sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_of_equal_allocation_is_one() {
        assert!((jain(&[5.0, 5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jain_of_single_winner_is_one_over_n() {
        let j = jain(&[10.0, 0.0, 0.0, 0.0]);
        assert!((j - 0.25).abs() < 1e-12);
    }

    #[test]
    fn jain_handles_edge_cases() {
        assert_eq!(jain(&[]), 1.0);
        assert_eq!(jain(&[0.0, 0.0]), 1.0);
        assert!((jain(&[7.5]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jain_is_scale_invariant() {
        let a = jain(&[1.0, 2.0, 3.0]);
        let b = jain(&[10.0, 20.0, 30.0]);
        assert!((a - b).abs() < 1e-12);
    }

    fn report_with(tputs: &[(&str, f64)]) -> RunReport {
        RunReport {
            measured_secs: 10.0,
            streams: tputs
                .iter()
                .map(|(n, t)| StreamReport {
                    name: n.to_string(),
                    src: "s".into(),
                    dst: "d".into(),
                    offered: 0,
                    delivered: (t * 10.0) as u64,
                    offered_pps: 64.0,
                    throughput_pps: *t,
                    delivered_bytes: 0,
                })
                .collect(),
            station_names: vec![],
            mac_stats: vec![],
            mac_drops: vec![],
            data_air_secs: 4.0,
            total_air_secs: 5.0,
            events_processed: 0,
            queue_stats: QueueStats::default(),
        }
    }

    #[test]
    fn report_lookup_and_totals() {
        let r = report_with(&[("a", 20.0), ("b", 30.0)]);
        assert_eq!(r.throughput("a"), 20.0);
        assert_eq!(r.total_throughput(), 50.0);
        assert!((r.jain_fairness_of(&["a", "b"]) - jain(&[20.0, 30.0])).abs() < 1e-12);
        assert!((r.data_utilization() - 0.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no stream named")]
    fn unknown_stream_name_panics() {
        let r = report_with(&[("a", 20.0)]);
        let _ = r.throughput("nope");
    }

    #[test]
    fn table_renders_all_streams() {
        let r = report_with(&[("a", 20.0), ("b", 30.0)]);
        let t = r.table();
        assert!(t.contains("a") && t.contains("b") && t.contains("TOTAL"));
    }
}
