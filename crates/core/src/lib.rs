//! Network assembly, paper topologies and statistics for the MACAW
//! reproduction — the crate a downstream user actually drives.
//!
//! * [`network`] — the [`network::Network`]: owns the radio medium, the
//!   per-station MAC state machines, the per-stream transports and traffic
//!   generators, and the deterministic event loop that connects them.
//! * [`scenario`] — the [`scenario::Scenario`] builder: place stations,
//!   choose protocols, declare streams, schedule mobility / power / noise
//!   actions, then `run()` to get a [`stats::RunReport`].
//! * [`figures`] — constructors for every topology in the paper
//!   (Figures 1–11), each parameterized by the protocol under test so a
//!   table's two columns differ by exactly one toggle.
//! * [`stats`] — per-stream throughput, Jain's fairness index, and the run
//!   report the benches print.
//! * [`faults`] — the deterministic fault-injection plan ([`faults::FaultPlan`]):
//!   noise bursts, corruption windows, station crashes, link asymmetry and
//!   position jitter, applied to a scenario before it is built.
//! * [`mobility`] — campus workloads: a [`topology`] floor whose pads roam
//!   under seeded random-waypoint motion, emitted as batched move actions
//!   so mobility composes with fault plans, sharding and the run cache.
//! * [`partition`] — the conservative coupling partition
//!   ([`partition::Partition`]) behind [`scenario::Scenario::run_with_shards`]:
//!   islands of stations that can ever interact, run in parallel with a
//!   bitwise-identical merged [`stats::RunReport`].
//! * [`error`] — [`error::SimError`], the typed failure every fallible entry
//!   point returns instead of panicking.
//!
//! # Quickstart
//!
//! ```
//! use macaw_core::prelude::*;
//!
//! // One cell: two pads saturating the channel toward a base station.
//! let mut sc = Scenario::new(42);
//! let base = sc.add_station("B", Point::new(0.0, 0.0, 6.0), MacKind::Macaw);
//! let p1 = sc.add_station("P1", Point::new(-3.0, 0.0, 0.0), MacKind::Macaw);
//! let p2 = sc.add_station("P2", Point::new(3.0, 0.0, 0.0), MacKind::Macaw);
//! sc.add_udp_stream("P1-B", p1, base, 64, 512);
//! sc.add_udp_stream("P2-B", p2, base, 64, 512);
//! let report = sc
//!     .run(SimDuration::from_secs(30), SimDuration::from_secs(5))
//!     .unwrap();
//! assert!(report.total_throughput() > 30.0);
//! let fairness = report.jain_fairness();
//! assert!(fairness > 0.95, "MACAW splits the channel fairly: {fairness}");
//! ```

pub mod error;
pub mod faults;
pub mod figures;
pub mod mobility;
pub mod network;
pub mod partition;
pub mod scenario;
pub mod stats;
pub mod topology;

pub use error::SimError;
pub use faults::{Fault, FaultPlan, FaultPlanConfig};
pub use mobility::{campus_topology, CampusConfig, WaypointConfig};
pub use network::Network;
pub use partition::{Partition, ShardRunStats, ShardStats};
pub use scenario::{Dest, MacKind, Scenario, SourceKind, StreamSpec, TransportKind};
pub use stats::{RunReport, StreamReport};
pub use topology::{scale_topology, ScaleConfig};

/// The commonly used names in one import.
pub mod prelude {
    pub use crate::error::SimError;
    pub use crate::faults::{Fault, FaultPlan, FaultPlanConfig};
    pub use crate::figures;
    pub use crate::network::Network;
    pub use crate::mobility::{campus_topology, CampusConfig, WaypointConfig};
    pub use crate::partition::{Partition, ShardRunStats, ShardStats};
    pub use crate::scenario::{Dest, MacKind, Scenario, SourceKind, StreamSpec, TransportKind};
    pub use crate::stats::{RunReport, StreamReport};
    pub use crate::topology::{scale_topology, ScaleConfig};
    pub use macaw_mac::{BackoffAlgo, BackoffSharing, MacConfig, QueueMode};
    pub use macaw_phy::{CutoffMode, MediumStats, Point, PropagationConfig};
    pub use macaw_sim::{SimDuration, SimTime};
    pub use macaw_transport::TcpConfig;
}
