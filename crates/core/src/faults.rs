//! Deterministic fault-injection plans.
//!
//! A [`FaultPlan`] is a seeded, pre-computed schedule of faults — noise
//! bursts, per-link corruption windows, station crashes, link asymmetry
//! and position jitter — that is applied to a [`Scenario`] *before* the
//! network is built. Because the plan is plain data derived from a seed,
//! `(Scenario, FaultPlan, seed)` fully determines a run: the same plan
//! replayed on the same scenario produces a bitwise-identical
//! [`crate::stats::RunReport`], which is what makes chaos runs debuggable.
//!
//! The fault classes map onto the paper's own failure discussion: §3.3.1's
//! intermittent noise (bursts and corruption windows), §4's asymmetric
//! links, and the Figure-9 "pad is turned off" experiment generalized to
//! crash-with-state-loss plus restart.

use macaw_phy::Point;
use macaw_sim::{SimDuration, SimRng, SimTime};

use crate::error::SimError;
use crate::scenario::Scenario;

/// RNG fork label for fault-plan generation, distinct from the labels the
/// scenario builder uses for the medium and per-station/stream RNGs.
const FAULT_FORK: u64 = 0xFA_5EED;

/// One injected fault.
#[derive(Clone, Debug, PartialEq)]
pub enum Fault {
    /// A spatial noise emitter at `pos` radiating `power` over
    /// `[from, until)` (§3.3.1's intermittent noise, placed in space).
    NoiseBurst {
        pos: Point,
        power: f64,
        from: SimTime,
        until: SimTime,
    },
    /// Frames from `src` that spend at least `min_air` on the air inside
    /// `[from, until)` arrive corrupted at `dst`. Control frames are short
    /// and slip under `min_air`, so this selectively kills DATA — the
    /// regime where MACAW's link ACK earns its keep.
    CorruptionWindow {
        src: usize,
        dst: usize,
        from: SimTime,
        until: SimTime,
        min_air: SimDuration,
    },
    /// The station powers off abruptly at `at`: any frame in flight is
    /// truncated, MAC state (backoff tables, exchange progress) is wiped,
    /// and queued packets are dropped unless `preserve_queues`. If
    /// `restart_at` is set the station comes back and re-contends.
    Crash {
        station: usize,
        at: SimTime,
        restart_at: Option<SimTime>,
        preserve_queues: bool,
    },
    /// What `dst` hears of `src` is scaled by `factor` over `[from, until)`
    /// and restored to unity afterwards (§4's asymmetric links, as a
    /// transient fault).
    LinkAsymmetry {
        src: usize,
        dst: usize,
        factor: f64,
        from: SimTime,
        until: SimTime,
    },
    /// The station teleports by `offset` (relative to its declared
    /// position) at `at` — antenna knocked, cart rolled away.
    PositionJitter {
        station: usize,
        at: SimTime,
        offset: Point,
    },
}

/// Knobs for [`FaultPlan::generate`].
#[derive(Clone, Debug)]
pub struct FaultPlanConfig {
    /// Horizon inside which every fault is placed.
    pub duration: SimDuration,
    /// How many of each fault class to draw.
    pub noise_bursts: usize,
    pub corruption_windows: usize,
    pub crashes: usize,
    pub asymmetries: usize,
    pub jitters: usize,
    /// Mean length of a corruption / noise / asymmetry window.
    pub mean_window: SimDuration,
    /// Minimum on-air time for corruption windows (spares control frames).
    pub min_air: SimDuration,
    /// Spatial scale (feet): noise emitters land within this radius of the
    /// origin, jitter offsets within a quarter of it.
    pub arena: f64,
    /// Crashed stations restart after roughly this long (always set; a
    /// plan with permanent deaths is built by hand).
    pub mean_downtime: SimDuration,
    /// Whether crashes keep their queues.
    pub preserve_queues: bool,
}

impl Default for FaultPlanConfig {
    fn default() -> Self {
        FaultPlanConfig {
            duration: SimDuration::from_secs(30),
            noise_bursts: 2,
            corruption_windows: 4,
            crashes: 1,
            asymmetries: 2,
            jitters: 2,
            mean_window: SimDuration::from_millis(150),
            min_air: SimDuration::from_millis(2),
            arena: 20.0,
            mean_downtime: SimDuration::from_secs(1),
            preserve_queues: true,
        }
    }
}

/// A seeded, deterministic schedule of faults.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed the plan was generated from (0 for hand-built plans).
    pub seed: u64,
    /// The schedule, in no particular order.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (useful as a baseline arm in ablations).
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            faults: Vec::new(),
        }
    }

    /// Draw a random plan for a network of `n_stations` stations. The
    /// same `(seed, cfg, n_stations)` always yields the same plan; the RNG
    /// is a fork with its own label, so plan generation never perturbs the
    /// scenario's own random streams.
    pub fn generate(seed: u64, cfg: &FaultPlanConfig, n_stations: usize) -> Self {
        let mut rng = SimRng::new(seed).fork(FAULT_FORK);
        let horizon = cfg.duration.as_nanos().max(1);
        let mut faults = Vec::new();

        let window = |rng: &mut SimRng| {
            let from = SimTime::ZERO + SimDuration::from_nanos(rng.uniform_inclusive(0, horizon));
            let len = rng.exponential(cfg.mean_window.as_nanos() as f64).max(1.0);
            (from, from + SimDuration::from_nanos(len as u64))
        };
        // Distinct ordered pair of stations; None if the network is too
        // small for link-level faults.
        let pair = |rng: &mut SimRng| {
            if n_stations < 2 {
                return None;
            }
            let src = rng.uniform_inclusive(0, n_stations as u64 - 1) as usize;
            let mut dst = rng.uniform_inclusive(0, n_stations as u64 - 2) as usize;
            if dst >= src {
                dst += 1;
            }
            Some((src, dst))
        };

        for _ in 0..cfg.noise_bursts {
            let (from, until) = window(&mut rng);
            let x = (rng.uniform_f64() * 2.0 - 1.0) * cfg.arena;
            let y = (rng.uniform_f64() * 2.0 - 1.0) * cfg.arena;
            faults.push(Fault::NoiseBurst {
                pos: Point::new(x, y, 0.0),
                power: 1.0 + rng.uniform_f64() * 4.0,
                from,
                until,
            });
        }
        for _ in 0..cfg.corruption_windows {
            if let Some((src, dst)) = pair(&mut rng) {
                let (from, until) = window(&mut rng);
                faults.push(Fault::CorruptionWindow {
                    src,
                    dst,
                    from,
                    until,
                    min_air: cfg.min_air,
                });
            }
        }
        for _ in 0..cfg.crashes {
            if n_stations == 0 {
                break;
            }
            let station = rng.uniform_inclusive(0, n_stations as u64 - 1) as usize;
            let at = SimTime::ZERO + SimDuration::from_nanos(rng.uniform_inclusive(0, horizon));
            let down = rng
                .exponential(cfg.mean_downtime.as_nanos() as f64)
                .max(1.0);
            faults.push(Fault::Crash {
                station,
                at,
                restart_at: Some(at + SimDuration::from_nanos(down as u64)),
                preserve_queues: cfg.preserve_queues,
            });
        }
        for _ in 0..cfg.asymmetries {
            if let Some((src, dst)) = pair(&mut rng) {
                let (from, until) = window(&mut rng);
                faults.push(Fault::LinkAsymmetry {
                    src,
                    dst,
                    // Deep fades: most of the signal gone.
                    factor: rng.uniform_f64() * 0.2,
                    from,
                    until,
                });
            }
        }
        for _ in 0..cfg.jitters {
            if n_stations == 0 {
                break;
            }
            let station = rng.uniform_inclusive(0, n_stations as u64 - 1) as usize;
            let at = SimTime::ZERO + SimDuration::from_nanos(rng.uniform_inclusive(0, horizon));
            let scale = cfg.arena / 4.0;
            let dx = (rng.uniform_f64() * 2.0 - 1.0) * scale;
            let dy = (rng.uniform_f64() * 2.0 - 1.0) * scale;
            faults.push(Fault::PositionJitter {
                station,
                at,
                offset: Point::new(dx, dy, 0.0),
            });
        }
        FaultPlan { seed, faults }
    }

    /// Check the plan against a scenario without applying it.
    pub fn validate(&self, sc: &Scenario) -> Result<(), SimError> {
        let n = sc.station_count();
        let bad = |msg: String| Err(SimError::InvalidFaultPlan(msg));
        let check_station = |s: usize, what: &str| {
            if s < n {
                Ok(())
            } else {
                Err(SimError::InvalidFaultPlan(format!(
                    "{what}: unknown station index {s} (have {n})"
                )))
            }
        };
        for f in &self.faults {
            match f {
                Fault::NoiseBurst {
                    power, from, until, ..
                } => {
                    if !(power.is_finite() && *power >= 0.0) {
                        return bad(format!("noise burst: power {power} must be finite and non-negative"));
                    }
                    if until <= from {
                        return bad(format!("noise burst: empty window [{from}, {until})"));
                    }
                }
                Fault::CorruptionWindow {
                    src,
                    dst,
                    from,
                    until,
                    ..
                } => {
                    check_station(*src, "corruption window")?;
                    check_station(*dst, "corruption window")?;
                    if src == dst {
                        return bad("corruption window: src and dst must differ".to_string());
                    }
                    if until <= from {
                        return bad(format!("corruption window: empty window [{from}, {until})"));
                    }
                }
                Fault::Crash {
                    station,
                    at,
                    restart_at,
                    ..
                } => {
                    check_station(*station, "crash")?;
                    if let Some(r) = restart_at {
                        if r <= at {
                            return bad(format!("crash: restart at {r} does not follow crash at {at}"));
                        }
                    }
                }
                Fault::LinkAsymmetry {
                    src,
                    dst,
                    factor,
                    from,
                    until,
                } => {
                    check_station(*src, "link asymmetry")?;
                    check_station(*dst, "link asymmetry")?;
                    if src == dst {
                        return bad("link asymmetry: src and dst must differ".to_string());
                    }
                    if !(factor.is_finite() && *factor >= 0.0) {
                        return bad(format!("link asymmetry: factor {factor} must be finite and non-negative"));
                    }
                    if until <= from {
                        return bad(format!("link asymmetry: empty window [{from}, {until})"));
                    }
                }
                Fault::PositionJitter { station, .. } => {
                    check_station(*station, "position jitter")?;
                }
            }
        }
        Ok(())
    }

    /// Validate the plan against `sc` and translate every fault into the
    /// scenario's scheduled actions / corruption windows. Fails with
    /// [`SimError::InvalidFaultPlan`] (leaving `sc` untouched) if any fault
    /// references an unknown station or has a degenerate window.
    pub fn apply(&self, sc: &mut Scenario) -> Result<(), SimError> {
        self.validate(sc)?;
        for f in &self.faults {
            match f {
                Fault::NoiseBurst {
                    pos,
                    power,
                    from,
                    until,
                } => {
                    let idx = sc.add_noise_source(*pos, *power, false);
                    sc.set_noise_at(*from, idx, true);
                    sc.set_noise_at(*until, idx, false);
                }
                Fault::CorruptionWindow {
                    src,
                    dst,
                    from,
                    until,
                    min_air,
                } => {
                    sc.corrupt_link(*src, *dst, *from, *until, *min_air);
                }
                Fault::Crash {
                    station,
                    at,
                    restart_at,
                    preserve_queues,
                } => {
                    sc.crash_at(*at, *station, *preserve_queues);
                    if let Some(r) = restart_at {
                        sc.restart_at(*r, *station);
                    }
                }
                Fault::LinkAsymmetry {
                    src,
                    dst,
                    factor,
                    from,
                    until,
                } => {
                    sc.set_link_gain_at(*from, *src, *dst, *factor);
                    sc.set_link_gain_at(*until, *src, *dst, 1.0);
                }
                Fault::PositionJitter {
                    station,
                    at,
                    offset,
                } => {
                    let base = sc
                        .station_position(*station)
                        .expect("validated station index");
                    let to = Point::new(base.x + offset.x, base.y + offset.y, base.z + offset.z);
                    sc.move_station_at(*at, *station, to);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::MacKind;

    fn sc3() -> Scenario {
        let mut sc = Scenario::new(5);
        sc.add_station("A", Point::new(0.0, 0.0, 6.0), MacKind::Macaw);
        sc.add_station("B", Point::new(3.0, 0.0, 0.0), MacKind::Macaw);
        sc.add_station("C", Point::new(-3.0, 0.0, 0.0), MacKind::Macaw);
        sc
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let cfg = FaultPlanConfig::default();
        let a = FaultPlan::generate(11, &cfg, 3);
        let b = FaultPlan::generate(11, &cfg, 3);
        let c = FaultPlan::generate(12, &cfg, 3);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(!a.faults.is_empty());
    }

    #[test]
    fn generated_plans_always_validate() {
        let cfg = FaultPlanConfig::default();
        for seed in 0..50 {
            let plan = FaultPlan::generate(seed, &cfg, 3);
            plan.validate(&sc3()).unwrap();
        }
    }

    #[test]
    fn link_faults_are_skipped_for_single_station_networks() {
        let plan = FaultPlan::generate(3, &FaultPlanConfig::default(), 1);
        assert!(plan.faults.iter().all(|f| !matches!(
            f,
            Fault::CorruptionWindow { .. } | Fault::LinkAsymmetry { .. }
        )));
    }

    #[test]
    fn bad_plans_are_rejected_with_typed_errors() {
        let sc = sc3();
        let bad_station = FaultPlan {
            seed: 0,
            faults: vec![Fault::Crash {
                station: 9,
                at: SimTime::ZERO,
                restart_at: None,
                preserve_queues: false,
            }],
        };
        let err = bad_station.validate(&sc).unwrap_err();
        assert!(matches!(err, SimError::InvalidFaultPlan(_)), "got: {err}");

        let bad_restart = FaultPlan {
            seed: 0,
            faults: vec![Fault::Crash {
                station: 0,
                at: SimTime::ZERO + SimDuration::from_secs(2),
                restart_at: Some(SimTime::ZERO + SimDuration::from_secs(1)),
                preserve_queues: false,
            }],
        };
        assert!(bad_restart.validate(&sc).is_err());

        let bad_window = FaultPlan {
            seed: 0,
            faults: vec![Fault::LinkAsymmetry {
                src: 0,
                dst: 0,
                factor: 0.5,
                from: SimTime::ZERO,
                until: SimTime::ZERO + SimDuration::from_secs(1),
            }],
        };
        let err = bad_window.validate(&sc).unwrap_err();
        assert!(err.to_string().contains("must differ"), "got: {err}");
    }

    #[test]
    fn apply_translates_every_fault_class() {
        let mut sc = sc3();
        sc.add_udp_stream("A-B", 0, 1, 8, 512);
        let plan = FaultPlan {
            seed: 0,
            faults: vec![
                Fault::NoiseBurst {
                    pos: Point::new(1.0, 0.0, 0.0),
                    power: 2.0,
                    from: SimTime::ZERO + SimDuration::from_secs(1),
                    until: SimTime::ZERO + SimDuration::from_secs(2),
                },
                Fault::CorruptionWindow {
                    src: 0,
                    dst: 1,
                    from: SimTime::ZERO + SimDuration::from_secs(3),
                    until: SimTime::ZERO + SimDuration::from_secs(4),
                    min_air: SimDuration::from_millis(2),
                },
                Fault::Crash {
                    station: 2,
                    at: SimTime::ZERO + SimDuration::from_secs(5),
                    restart_at: Some(SimTime::ZERO + SimDuration::from_secs(6)),
                    preserve_queues: true,
                },
                Fault::LinkAsymmetry {
                    src: 1,
                    dst: 0,
                    factor: 0.1,
                    from: SimTime::ZERO + SimDuration::from_secs(7),
                    until: SimTime::ZERO + SimDuration::from_secs(8),
                },
                Fault::PositionJitter {
                    station: 1,
                    at: SimTime::ZERO + SimDuration::from_secs(9),
                    offset: Point::new(1.0, 1.0, 0.0),
                },
            ],
        };
        plan.apply(&mut sc).unwrap();
        // The plan survived the scenario's own builder validation too, and
        // the faulted scenario still builds and runs.
        let report = sc
            .run(SimDuration::from_secs(10), SimDuration::from_secs(1))
            .unwrap();
        assert!(report.stream("A-B").delivered > 0);
    }
}
