//! The scenario builder: declarative construction of a simulated network.
//!
//! A [`Scenario`] collects stations, protocol choices, streams, noise and
//! scheduled actions, then [`Scenario::build`]s a [`Network`] (or
//! [`Scenario::run`]s it directly). Everything is derived deterministically
//! from the scenario seed, so `(Scenario, seed)` fully determines a run.

use macaw_mac::config::MacConfig;
use macaw_mac::context::MacProtocol;
use macaw_mac::csma::{Csma, CsmaConfig};
use macaw_mac::frames::{Addr, StreamId, Timing};
use macaw_mac::wmac::WMac;
use macaw_phy::{
    DenseMedium, LinkWindow, Medium, MediumStats, Point, Propagation, PropagationConfig, StationId,
};
use macaw_sim::{SimDuration, SimRng, SimTime};
use macaw_traffic::{Cbr, Poisson, TrafficSource};
use macaw_transport::{TcpConfig, TcpReceiver, TcpSender, Transport, UdpReceiver, UdpSender};

use crate::error::SimError;
use crate::network::{ActionKind, Network, ScheduledAction};
use crate::partition::{Partition, ShardRunStats, ShardStats};
use crate::stats::{RunReport, StreamReport};

/// Which MAC protocol a station runs.
#[derive(Clone, Copy, Debug)]
pub enum MacKind {
    /// Appendix A MACA (RTS-CTS-DATA, BEB, no sharing, single FIFO).
    Maca,
    /// Appendix B MACAW (RTS-CTS-DS-DATA-ACK, RRTS, MILD, per-destination
    /// backoff, per-stream queues).
    Macaw,
    /// Any point in the design space (ablations).
    Custom(MacConfig),
    /// The carrier-sense baseline of §2.2.
    Csma(CsmaConfig),
}

impl MacKind {
    fn build(self, addr: Addr, groups: &[u32]) -> Box<dyn MacProtocol> {
        match self {
            MacKind::Maca => {
                let mut m = WMac::new(addr, MacConfig::maca());
                for g in groups {
                    m.join_group(*g);
                }
                Box::new(m)
            }
            MacKind::Macaw => {
                let mut m = WMac::new(addr, MacConfig::macaw());
                for g in groups {
                    m.join_group(*g);
                }
                Box::new(m)
            }
            MacKind::Custom(cfg) => {
                let mut m = WMac::new(addr, cfg);
                for g in groups {
                    m.join_group(*g);
                }
                Box::new(m)
            }
            MacKind::Csma(cfg) => Box::new(Csma::new(addr, cfg)),
        }
    }

    fn timing(&self) -> Timing {
        match self {
            MacKind::Maca | MacKind::Macaw => Timing::default(),
            MacKind::Custom(cfg) => cfg.timing,
            MacKind::Csma(cfg) => cfg.timing,
        }
    }
}

/// Which transport a stream uses.
#[derive(Clone, Copy, Debug)]
pub enum TransportKind {
    /// Fire-and-forget datagrams (most of the paper's experiments).
    Udp,
    /// The simplified TCP of §3.3.1 (Tables 4 and 11).
    Tcp(TcpConfig),
}

/// The traffic model for a stream.
#[derive(Clone, Copy, Debug)]
pub enum SourceKind {
    /// Constant bit rate at `pps` packets per second (the paper's model).
    Cbr { pps: u64 },
    /// Poisson arrivals with mean `pps` packets per second.
    Poisson { pps: f64 },
}

/// Where a stream's packets go.
#[derive(Clone, Debug)]
pub enum Dest {
    /// A single receiving station.
    Station(usize),
    /// A multicast group and its member stations (§3.3.4; UDP only).
    Group { group: u32, members: Vec<usize> },
}

/// A declared traffic stream.
#[derive(Clone, Debug)]
pub struct StreamSpec {
    /// Label used in reports (the paper's "P1-B" style).
    pub name: String,
    /// Source station index.
    pub src: usize,
    /// Destination.
    pub dst: Dest,
    /// Transport protocol.
    pub transport: TransportKind,
    /// Traffic model.
    pub source: SourceKind,
    /// Application packet size in bytes (the paper uses 512).
    pub bytes: u32,
    /// Stream start time.
    pub start: SimTime,
    /// Stream stop time (None = runs to the end).
    pub stop: Option<SimTime>,
}

#[derive(Clone, Debug)]
pub(crate) struct StationSpec {
    pub(crate) name: String,
    pub(crate) pos: Point,
    pub(crate) mac: MacKind,
    pub(crate) groups: Vec<u32>,
    pub(crate) rx_error_rate: f64,
    pub(crate) tx_power: f64,
}

/// Declarative scenario description. See the crate docs for an example.
///
/// Builder calls never panic on bad input: the first problem (an unknown
/// station index, a stream to self, …) is recorded and reported as
/// [`SimError::InvalidScenario`] when [`Scenario::build`] or
/// [`Scenario::run`] is called, so misconfiguration surfaces as a typed
/// error instead of a crash mid-construction.
pub struct Scenario {
    pub(crate) seed: u64,
    pub(crate) prop: PropagationConfig,
    pub(crate) stations: Vec<StationSpec>,
    pub(crate) streams: Vec<StreamSpec>,
    pub(crate) noise: Vec<(Point, f64, bool)>,
    pub(crate) actions: Vec<ScheduledAction>,
    /// Flat move table for batched mobility: each
    /// [`ActionKind::MoveBatch`] action names a `start..start + len` slice
    /// of this vector. Kept beside `actions` (not inside them) so the
    /// action enum stays `Copy`; shard projections replicate the whole
    /// table because batch indices are global.
    pub(crate) moves: Vec<(StationId, Point)>,
    pub(crate) windows: Vec<LinkWindow>,
    /// Global stream ids, by position in `streams`. `None` (every
    /// user-built scenario) means stream `i` is `StreamId(i)`; shard
    /// projections override this so a stream keeps its *global* id — and
    /// therefore its RNG fork — when it is rebuilt inside a shard that
    /// holds only a subset of the streams.
    pub(crate) stream_ids: Option<Vec<u32>>,
    /// Precomputed island labels for this scenario's contents. `None`
    /// (every user-built scenario) derives them at build time; shard
    /// projections carry the *global* partition restricted to their rows so
    /// per-island accounting matches the serial run label for label.
    pub(crate) islands: Option<Partition>,
    /// First builder-time problem, reported at build()/run().
    pub(crate) defect: Option<String>,
}

impl Scenario {
    /// Start an empty scenario with the given seed.
    pub fn new(seed: u64) -> Self {
        Scenario {
            seed,
            prop: PropagationConfig::default(),
            stations: Vec::new(),
            streams: Vec::new(),
            noise: Vec::new(),
            actions: Vec::new(),
            moves: Vec::new(),
            windows: Vec::new(),
            stream_ids: None,
            islands: None,
            defect: None,
        }
    }

    /// Number of stations declared so far.
    pub fn station_count(&self) -> usize {
        self.stations.len()
    }

    /// The declared (initial) position of a station, if it exists.
    pub fn station_position(&self, station: usize) -> Option<Point> {
        self.stations.get(station).map(|s| s.pos)
    }

    /// Record the first builder-time problem (later ones add no signal).
    fn note_defect(&mut self, msg: String) {
        if self.defect.is_none() {
            self.defect = Some(msg);
        }
    }

    /// Check a station index, recording a defect if it is out of range.
    fn check_station(&mut self, station: usize, what: &str) -> bool {
        if station < self.stations.len() {
            true
        } else {
            self.note_defect(format!(
                "{what}: unknown station index {station} (have {})",
                self.stations.len()
            ));
            false
        }
    }

    /// Override the propagation model (default: the paper's near-field
    /// model with a hard out-of-range cutoff).
    pub fn propagation(&mut self, cfg: PropagationConfig) -> &mut Self {
        self.prop = cfg;
        self
    }

    /// A deterministic 128-bit fingerprint of everything that determines
    /// this scenario's trajectory: the seed, the propagation model, every
    /// station (position, protocol configuration, error rate, power),
    /// every stream, every noise emitter, every scheduled action (fault
    /// plans apply as actions and corruption windows, so they are covered)
    /// and the crate version.
    ///
    /// Two scenarios with equal fingerprints run the same simulation; a
    /// changed parameter — a different seed, a moved station, one extra
    /// fault — changes the fingerprint. The run cache keys persisted
    /// [`RunReport`]s on this (plus the run duration and warm-up), so a
    /// cache hit is safe to substitute for a simulation.
    ///
    /// The hash folds the exact `Debug` rendering of the configuration
    /// (Rust prints floats as their shortest round-trippable decimals, so
    /// distinct f64 bit patterns render distinctly) through two
    /// independently-seeded [`FastHasher`](macaw_sim::FastHasher) streams
    /// — deterministic across processes and platforms.
    pub fn fingerprint(&self) -> [u64; 2] {
        use std::hash::Hasher;
        let text = format!(
            "macaw {} seed={} prop={:?} stations={:?} streams={:?} noise={:?} actions={:?} moves={:?} windows={:?}",
            env!("CARGO_PKG_VERSION"),
            self.seed,
            self.prop,
            self.stations,
            self.streams,
            self.noise,
            self.actions,
            self.moves,
            self.windows,
        );
        let mut lo = macaw_sim::FastHasher::default();
        let mut hi = macaw_sim::FastHasher::default();
        lo.write_u64(0x5eed_0001);
        hi.write_u64(0x5eed_0002);
        lo.write(text.as_bytes());
        hi.write(text.as_bytes());
        [lo.finish(), hi.finish()]
    }

    /// Add a station; returns its index. Positions are in feet, with
    /// base stations conventionally at z = 6 and pads at z = 0 (the paper's
    /// "pads are 6 feet below the base station height").
    pub fn add_station(&mut self, name: &str, pos: Point, mac: MacKind) -> usize {
        self.stations.push(StationSpec {
            name: name.to_string(),
            pos,
            mac,
            groups: Vec::new(),
            rx_error_rate: 0.0,
            tx_power: 1.0,
        });
        self.stations.len() - 1
    }

    /// Subscribe a station to a multicast group.
    pub fn join_group(&mut self, station: usize, group: u32) -> &mut Self {
        if self.check_station(station, "join_group") {
            self.stations[station].groups.push(group);
        }
        self
    }

    /// Set the per-packet noise corruption probability at a station
    /// (§3.3.1's intermittent-noise model).
    pub fn set_rx_error_rate(&mut self, station: usize, p: f64) -> &mut Self {
        if !(0.0..=1.0).contains(&p) {
            self.note_defect(format!("set_rx_error_rate: {p} is not a probability"));
        } else if self.check_station(station, "set_rx_error_rate") {
            self.stations[station].rx_error_rate = p;
        }
        self
    }

    /// Set a station's transmit power multiplier (§4 extension; default
    /// 1.0 — the paper's stations all transmit at the same strength, and
    /// unequal powers break the symmetry the CTS mechanism relies on).
    pub fn set_tx_power(&mut self, station: usize, power: f64) -> &mut Self {
        if !(power.is_finite() && power > 0.0) {
            self.note_defect(format!("set_tx_power: {power} must be finite and positive"));
        } else if self.check_station(station, "set_tx_power") {
            self.stations[station].tx_power = power;
        }
        self
    }

    /// Add a spatial noise emitter; returns its index.
    pub fn add_noise_source(&mut self, pos: Point, power: f64, active: bool) -> usize {
        self.noise.push((pos, power, active));
        self.noise.len() - 1
    }

    /// Declare a stream (full control). Returns the stream index. A
    /// defective spec is recorded and reported at [`Scenario::build`].
    pub fn add_stream(&mut self, spec: StreamSpec) -> usize {
        if let Err(msg) = self.validate_stream(&spec) {
            self.note_defect(msg);
        }
        self.streams.push(spec);
        self.streams.len() - 1
    }

    /// Sugar: a UDP CBR stream from `src` to `dst` starting at t = 0.
    pub fn add_udp_stream(
        &mut self,
        name: &str,
        src: usize,
        dst: usize,
        pps: u64,
        bytes: u32,
    ) -> usize {
        self.add_stream(StreamSpec {
            name: name.to_string(),
            src,
            dst: Dest::Station(dst),
            transport: TransportKind::Udp,
            source: SourceKind::Cbr { pps },
            bytes,
            start: SimTime::ZERO,
            stop: None,
        })
    }

    /// Sugar: a TCP CBR stream from `src` to `dst` starting at t = 0.
    pub fn add_tcp_stream(
        &mut self,
        name: &str,
        src: usize,
        dst: usize,
        pps: u64,
        bytes: u32,
    ) -> usize {
        self.add_stream(StreamSpec {
            name: name.to_string(),
            src,
            dst: Dest::Station(dst),
            transport: TransportKind::Tcp(TcpConfig::default()),
            source: SourceKind::Cbr { pps },
            bytes,
            start: SimTime::ZERO,
            stop: None,
        })
    }

    /// Schedule a station move (mobility) at time `at`.
    pub fn move_station_at(&mut self, at: SimTime, station: usize, to: Point) -> &mut Self {
        self.actions.push(ScheduledAction {
            at,
            kind: ActionKind::Move { station, to },
        });
        self
    }

    /// Schedule a simultaneous move of several stations at time `at`: one
    /// batch, applied through [`macaw_phy::Medium::set_positions`] so the
    /// medium coalesces the interference re-folds across the batch. The
    /// waypoint mobility driver ([`crate::mobility`]) emits one batch per
    /// tick. An empty batch is a no-op; a batch is one event, so all its
    /// stations are coupled into one island by [`Scenario::partition`].
    pub fn move_stations_at(&mut self, at: SimTime, moves: &[(usize, Point)]) -> &mut Self {
        if moves.is_empty() {
            return self;
        }
        for &(station, _) in moves {
            if !self.check_station(station, "move_stations_at") {
                return self;
            }
        }
        let start = self.moves.len() as u32;
        self.moves
            .extend(moves.iter().map(|&(s, p)| (StationId(s), p)));
        self.actions.push(ScheduledAction {
            at,
            kind: ActionKind::MoveBatch {
                start,
                len: moves.len() as u32,
            },
        });
        self
    }

    /// Schedule a station power-off at time `at` (the Figure-9 experiment).
    pub fn power_off_at(&mut self, at: SimTime, station: usize) -> &mut Self {
        self.actions.push(ScheduledAction {
            at,
            kind: ActionKind::PowerOff { station },
        });
        self
    }

    /// Schedule a station power-on at time `at`.
    pub fn power_on_at(&mut self, at: SimTime, station: usize) -> &mut Self {
        self.actions.push(ScheduledAction {
            at,
            kind: ActionKind::PowerOn { station },
        });
        self
    }

    /// Schedule a noise emitter toggle at time `at`.
    pub fn set_noise_at(&mut self, at: SimTime, index: usize, active: bool) -> &mut Self {
        if index >= self.noise.len() {
            self.note_defect(format!(
                "set_noise_at: unknown noise source {index} (have {})",
                self.noise.len()
            ));
        } else {
            self.actions.push(ScheduledAction {
                at,
                kind: ActionKind::SetNoise { index, active },
            });
        }
        self
    }

    /// Schedule a station crash at time `at`: any frame in flight is
    /// truncated, the MAC's volatile state is wiped, and the station stays
    /// dead until a scheduled [`Scenario::restart_at`]. `preserve_queues`
    /// keeps queued packets across the crash (battery pull vs. clean boot).
    pub fn crash_at(&mut self, at: SimTime, station: usize, preserve_queues: bool) -> &mut Self {
        if self.check_station(station, "crash_at") {
            self.actions.push(ScheduledAction {
                at,
                kind: ActionKind::Crash {
                    station,
                    preserve_queues,
                },
            });
        }
        self
    }

    /// Schedule a crashed station's restart at time `at`.
    pub fn restart_at(&mut self, at: SimTime, station: usize) -> &mut Self {
        if self.check_station(station, "restart_at") {
            self.actions.push(ScheduledAction {
                at,
                kind: ActionKind::Restart { station },
            });
        }
        self
    }

    /// Schedule a change to one directional link's gain at time `at`
    /// (asymmetry fault: `factor` scales what `dst` hears of `src`).
    pub fn set_link_gain_at(
        &mut self,
        at: SimTime,
        src: usize,
        dst: usize,
        factor: f64,
    ) -> &mut Self {
        if !(factor.is_finite() && factor >= 0.0) {
            self.note_defect(format!(
                "set_link_gain_at: {factor} must be finite and non-negative"
            ));
        } else if src == dst {
            self.note_defect("set_link_gain_at: src and dst must differ".to_string());
        } else if self.check_station(src, "set_link_gain_at")
            && self.check_station(dst, "set_link_gain_at")
        {
            self.actions.push(ScheduledAction {
                at,
                kind: ActionKind::SetLinkGain { src, dst, factor },
            });
        }
        self
    }

    /// Add a deterministic corruption window: frames from `src` that spend
    /// at least `min_air` on the air inside `[from, until)` arrive dirty at
    /// `dst`. Control frames are short and slip under `min_air`, so this is
    /// the per-link packet-corruption fault of the lossy-channel ablation.
    pub fn corrupt_link(
        &mut self,
        src: usize,
        dst: usize,
        from: SimTime,
        until: SimTime,
        min_air: SimDuration,
    ) -> &mut Self {
        if src == dst {
            self.note_defect("corrupt_link: src and dst must differ".to_string());
        } else if until <= from {
            self.note_defect(format!("corrupt_link: empty window [{from}, {until})"));
        } else if self.check_station(src, "corrupt_link")
            && self.check_station(dst, "corrupt_link")
        {
            self.windows.push(LinkWindow {
                src: StationId(src),
                dst: StationId(dst),
                from,
                until,
                min_air,
            });
        }
        self
    }

    fn validate_stream(&self, spec: &StreamSpec) -> Result<(), String> {
        if spec.src >= self.stations.len() {
            return Err(format!("stream '{}': unknown source station", spec.name));
        }
        match &spec.dst {
            Dest::Station(d) => {
                if *d >= self.stations.len() {
                    return Err(format!("stream '{}': unknown destination station", spec.name));
                }
                if spec.src == *d {
                    return Err(format!("stream '{}': stream to self", spec.name));
                }
            }
            Dest::Group { members, .. } => {
                if !matches!(spec.transport, TransportKind::Udp) {
                    return Err(format!(
                        "stream '{}': multicast streams are UDP only",
                        spec.name
                    ));
                }
                if members.is_empty() {
                    return Err(format!(
                        "stream '{}': multicast stream without members",
                        spec.name
                    ));
                }
                for m in members {
                    if *m >= self.stations.len() {
                        return Err(format!("stream '{}': unknown group member", spec.name));
                    }
                }
            }
        }
        if spec.bytes == 0 {
            return Err(format!("stream '{}': zero-byte packets", spec.name));
        }
        Ok(())
    }

    /// Assemble the network on the default cube-grid [`Medium`], reporting
    /// the first recorded builder defect (if any) as
    /// [`SimError::InvalidScenario`].
    pub fn build(self) -> Result<Network, SimError> {
        self.build_with()
    }

    /// Assemble the network on the dense-matrix oracle medium. Same
    /// scenario, same seed derivation, same event stream — only the
    /// medium's internal bookkeeping differs. Used by the `scale` bench
    /// baseline and the sparse-vs-dense equivalence tests.
    pub fn build_dense(self) -> Result<Network<DenseMedium>, SimError> {
        self.build_with()
    }

    /// Assemble the network on any [`Medium`] implementation (with the
    /// default ladder-queue future-event list).
    pub fn build_with<M: Medium>(self) -> Result<Network<M>, SimError> {
        self.build_with_queue::<M, macaw_sim::LadderFel>()
    }

    /// Assemble the network on any [`Medium`] and any future-event-list
    /// family ([`macaw_sim::FelChoice`]). The FEL is unobservable by
    /// construction — every backend pops the same total order — so this
    /// exists for the queue-equivalence tests and engine benchmarks that
    /// prove it.
    pub fn build_with_queue<M: Medium, Q: macaw_sim::FelChoice>(
        mut self,
    ) -> Result<Network<M, Q>, SimError> {
        if let Some(msg) = self.defect.take() {
            return Err(SimError::InvalidScenario(msg));
        }
        // Island labels for the per-island event accounting: precomputed by
        // the sharded runner (the global partition restricted to this
        // projection), derived from the coupling graph otherwise.
        let part = match self.islands.take() {
            Some(p) => p,
            None => crate::partition::compute(&self),
        };
        let root = SimRng::new(self.seed);
        // Multicast group membership comes from both explicit joins and
        // stream declarations.
        for si in 0..self.streams.len() {
            if let Dest::Group { group, members } = &self.streams[si].dst {
                let (g, ms) = (*group, members.clone());
                for m in ms {
                    if !self.stations[m].groups.contains(&g) {
                        self.stations[m].groups.push(g);
                    }
                }
            }
        }

        let timing = self
            .stations
            .first()
            .map(|s| s.mac.timing())
            .unwrap_or_default();
        let mut medium = M::new(Propagation::new(self.prop), root.fork(0xA11CE));
        for (i, s) in self.stations.iter().enumerate() {
            let id = medium.add_station(s.pos);
            debug_assert_eq!(id, StationId(i));
            medium.set_rx_error_rate(id, s.rx_error_rate);
            if s.tx_power != 1.0 {
                medium.set_tx_power(id, s.tx_power);
            }
        }
        for (pos, power, active) in &self.noise {
            let idx = medium.add_noise_source(*pos, *power);
            medium.set_noise_active(idx, *active);
        }
        let mut net = Network::new(medium, timing);

        for (i, s) in self.stations.iter().enumerate() {
            let mac = s.mac.build(Addr::Unicast(i), &s.groups);
            net.add_station(s.name.clone(), mac, root.fork(0x57A7_0000 + i as u64));
        }

        for (i, spec) in self.streams.iter().enumerate() {
            // A shard projection carries global ids so a stream's label and
            // RNG fork are identical to the full (serial) build.
            let gid = match &self.stream_ids {
                Some(ids) => ids[i],
                None => i as u32,
            };
            let id = StreamId(gid);
            let source: Box<dyn TrafficSource> = match spec.source {
                SourceKind::Cbr { pps } => Box::new(Cbr::pps(pps, spec.bytes)),
                SourceKind::Poisson { pps } => Box::new(Poisson::pps(pps, spec.bytes)),
            };
            let rng = root.fork(0x5742_0000 + gid as u64);
            match &spec.dst {
                Dest::Station(dst) => {
                    let (sender, receiver): (Box<dyn Transport>, Box<dyn Transport>) =
                        match spec.transport {
                            TransportKind::Udp => {
                                (Box::new(UdpSender::new()), Box::new(UdpReceiver::new()))
                            }
                            TransportKind::Tcp(cfg) => (
                                Box::new(TcpSender::new(cfg, spec.bytes)),
                                Box::new(TcpReceiver::new(cfg)),
                            ),
                        };
                    net.add_unicast_stream(
                        spec.name.clone(),
                        id,
                        spec.src,
                        *dst,
                        spec.bytes,
                        source,
                        rng,
                        spec.start,
                        spec.stop,
                        sender,
                        receiver,
                    );
                }
                Dest::Group { group, members } => {
                    net.add_multicast_stream(
                        spec.name.clone(),
                        id,
                        spec.src,
                        *group,
                        members.clone(),
                        spec.bytes,
                        source,
                        rng,
                        spec.start,
                        spec.stop,
                        Box::new(UdpSender::new()),
                    );
                }
            }
        }

        net.set_moves(std::mem::take(&mut self.moves));
        for a in self.actions.drain(..) {
            net.schedule_action(a);
        }
        for w in self.windows.drain(..) {
            net.add_corruption_window(w);
        }
        net.set_islands(&part);
        net.prime();
        Ok(net)
    }

    /// The conservative coupling partition of this scenario: the islands
    /// of stations that can ever interact, plus the island of every
    /// stream, action, corruption window and noise emitter. See
    /// [`crate::partition`] for the coupling rules and
    /// [`Scenario::run_with_shards`] for the engine built on top of it.
    pub fn partition(&self) -> Result<Partition, SimError> {
        if let Some(msg) = &self.defect {
            return Err(SimError::InvalidScenario(msg.clone()));
        }
        Ok(crate::partition::compute(self))
    }

    /// Build and run for `duration`, measuring after `warmup`.
    pub fn run(self, duration: SimDuration, warmup: SimDuration) -> Result<RunReport, SimError> {
        self.run_with::<macaw_phy::SparseMedium>(duration, warmup)
    }

    /// [`Scenario::run`] on the dense-matrix oracle medium. Produces a
    /// bitwise-identical [`RunReport`] for the same scenario and seed.
    pub fn run_dense(
        self,
        duration: SimDuration,
        warmup: SimDuration,
    ) -> Result<RunReport, SimError> {
        self.run_with::<DenseMedium>(duration, warmup)
    }

    /// Build on any [`Medium`] implementation and run for `duration`,
    /// measuring after `warmup`.
    pub fn run_with<M: Medium>(
        self,
        duration: SimDuration,
        warmup: SimDuration,
    ) -> Result<RunReport, SimError> {
        self.run_with_queue::<M, macaw_sim::LadderFel>(duration, warmup)
    }

    /// [`Scenario::run_with`] on an explicit future-event-list family.
    /// Produces a bitwise-identical [`RunReport`] for the same scenario
    /// and seed whichever FEL backend runs it.
    pub fn run_with_queue<M: Medium, Q: macaw_sim::FelChoice>(
        self,
        duration: SimDuration,
        warmup: SimDuration,
    ) -> Result<RunReport, SimError> {
        if warmup >= duration {
            return Err(SimError::InvalidScenario(
                "warmup must end before the run does".to_string(),
            ));
        }
        let mut net = self.build_with_queue::<M, Q>()?;
        let warmup_end = SimTime::ZERO + warmup;
        let end = SimTime::ZERO + duration;
        net.set_warmup(warmup_end);
        net.run_until(end)?;
        Ok(net.report(end))
    }

    /// [`Scenario::run_with`] that also returns the medium's side-channel
    /// operation counters ([`MediumStats`]). The report is byte-for-byte
    /// what `run_with` produces — the counters ride outside it so the
    /// bitwise-identity contracts (dense vs sparse, serial vs sharded,
    /// cache fingerprints) are untouched by instrumentation.
    pub fn run_with_medium_stats<M: Medium>(
        self,
        duration: SimDuration,
        warmup: SimDuration,
    ) -> Result<(RunReport, MediumStats), SimError> {
        if warmup >= duration {
            return Err(SimError::InvalidScenario(
                "warmup must end before the run does".to_string(),
            ));
        }
        let mut net = self.build_with_queue::<M, macaw_sim::LadderFel>()?;
        let warmup_end = SimTime::ZERO + warmup;
        let end = SimTime::ZERO + duration;
        net.set_warmup(warmup_end);
        net.run_until(end)?;
        let medium = net.medium().medium_stats();
        Ok((net.report(end), medium))
    }

    /// Run the scenario **sharded**: decompose it into coupling islands
    /// (see [`crate::partition`]), assign whole islands to `shards` OS
    /// threads, run each shard as an independent event loop, and merge the
    /// per-shard results into a [`RunReport`] that is bitwise identical to
    /// [`Scenario::run`]'s — the serial engine stays the oracle, exactly as
    /// for the dense-vs-sparse media and heap-vs-ladder FELs.
    ///
    /// The model's zero propagation delay leaves zero conservative
    /// lookahead *within* an island and unbounded lookahead *between*
    /// islands, so there are no epochs or cross-shard inboxes to manage:
    /// each shard runs its islands to completion and the only barrier is
    /// the final join (DESIGN.md "Parallel DES" derives this). The
    /// attainable speed-up is therefore bounded by the island structure —
    /// a scenario that is one big island (every paper-table topology) runs
    /// serially whatever the shard count, which the returned
    /// [`ShardRunStats`] makes visible.
    pub fn run_with_shards(
        self,
        duration: SimDuration,
        warmup: SimDuration,
        shards: usize,
    ) -> Result<(RunReport, ShardRunStats), SimError> {
        self.run_with_shards_queue::<macaw_phy::SparseMedium, macaw_sim::LadderFel>(
            duration, warmup, shards,
        )
    }

    /// [`Scenario::run_with_shards`] on an explicit medium and
    /// future-event-list family.
    pub fn run_with_shards_queue<M: Medium, Q: macaw_sim::FelChoice>(
        mut self,
        duration: SimDuration,
        warmup: SimDuration,
        shards: usize,
    ) -> Result<(RunReport, ShardRunStats), SimError> {
        if warmup >= duration {
            return Err(SimError::InvalidScenario(
                "warmup must end before the run does".to_string(),
            ));
        }
        if let Some(msg) = self.defect.take() {
            return Err(SimError::InvalidScenario(msg));
        }
        let part = crate::partition::compute(&self);
        let n_shards = shards.max(1);
        let shard_of = part.assign_shards(n_shards);

        // Project the scenario onto each shard. Every shard replicates ALL
        // stations and noise emitters — so station indices, RNG forks and
        // medium construction are identical to the serial build — but
        // receives only the streams, actions and corruption windows of the
        // islands it owns. Stations outside those islands are inert: a MAC
        // only acts when driven by traffic, a timer or a received frame,
        // and nothing in a foreign island can produce any of the three.
        let mut shard_scs: Vec<Scenario> = (0..n_shards)
            .map(|_| Scenario {
                seed: self.seed,
                prop: self.prop,
                stations: self.stations.clone(),
                streams: Vec::new(),
                noise: self.noise.clone(),
                actions: Vec::new(),
                // The whole move table rides along: batch actions index it
                // globally, and an unreferenced entry is inert.
                moves: self.moves.clone(),
                windows: Vec::new(),
                stream_ids: Some(Vec::new()),
                islands: None,
                defect: None,
            })
            .collect();
        // Global stream ids owned by each shard, in declaration order.
        let mut gids: Vec<Vec<u32>> = vec![Vec::new(); n_shards];
        // The global partition restricted to each projection's rows, so
        // per-island accounting in the shard matches the serial labels.
        let mut sub_streams: Vec<Vec<u32>> = vec![Vec::new(); n_shards];
        let mut sub_actions: Vec<Vec<u32>> = vec![Vec::new(); n_shards];
        let mut sub_windows: Vec<Vec<u32>> = vec![Vec::new(); n_shards];
        for (i, spec) in self.streams.iter().enumerate() {
            let isl = part.stream_island[i];
            let s = shard_of[isl as usize] as usize;
            shard_scs[s].streams.push(spec.clone());
            gids[s].push(i as u32);
            sub_streams[s].push(isl);
        }
        for (i, a) in self.actions.iter().enumerate() {
            let isl = part.action_island[i];
            let s = shard_of[isl as usize] as usize;
            shard_scs[s].actions.push(*a);
            sub_actions[s].push(isl);
        }
        for (i, w) in self.windows.iter().enumerate() {
            let isl = part.window_island[i];
            let s = shard_of[isl as usize] as usize;
            shard_scs[s].windows.push(*w);
            sub_windows[s].push(isl);
        }
        for (s, sc) in shard_scs.iter_mut().enumerate() {
            sc.stream_ids = Some(gids[s].clone());
            sc.islands = Some(Partition {
                n_islands: part.n_islands,
                station_island: part.station_island.clone(),
                stream_island: std::mem::take(&mut sub_streams[s]),
                action_island: std::mem::take(&mut sub_actions[s]),
                window_island: std::mem::take(&mut sub_windows[s]),
                noise_island: part.noise_island.clone(),
            });
        }

        let warmup_end = SimTime::ZERO + warmup;
        let end = SimTime::ZERO + duration;
        type ShardOutcome = Result<(RunReport, (u64, u64), u64, f64, MediumStats), SimError>;
        let results: Vec<ShardOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = shard_scs
                .into_iter()
                .map(|sc| {
                    scope.spawn(move || -> ShardOutcome {
                        let t0 = std::time::Instant::now();
                        let mut net = sc.build_with_queue::<M, Q>()?;
                        net.set_warmup(warmup_end);
                        net.run_until(end)?;
                        let report = net.report(end);
                        let air = net.air_totals_ns();
                        let events = net.events_processed();
                        let medium = net.medium().medium_stats();
                        Ok((report, air, events, t0.elapsed().as_secs_f64(), medium))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard thread panicked"))
                .collect()
        });
        let mut reports = Vec::with_capacity(n_shards);
        let mut walls = Vec::with_capacity(n_shards);
        let mut events = Vec::with_capacity(n_shards);
        let (mut data_ns, mut air_ns, mut total_events) = (0u64, 0u64, 0u64);
        let mut medium = MediumStats::default();
        for r in results {
            let (rep, (d, a), ev, wall, med) = r?;
            data_ns += d;
            air_ns += a;
            total_events += ev;
            medium.merge(med);
            events.push(ev);
            walls.push(wall);
            reports.push(rep);
        }

        // Merge, field by field, into exactly what the serial engine
        // reports. Per-stream and per-station rows come verbatim from the
        // owning shard (each shard computed its rates from the same
        // `measured` value below, so the f64s are bit-identical); air
        // totals are summed as integer nanoseconds *before* the single
        // conversion to seconds; queue counters sum because every event
        // belongs to exactly one island, and the high-water field was
        // redefined as an island sum for precisely this reason (see
        // [`Network::queue_stats`](crate::network::Network::queue_stats)).
        let measured = end.saturating_since(warmup_end).as_secs_f64();
        let mut stream_rows: Vec<Option<StreamReport>> = vec![None; self.streams.len()];
        for (s, rep) in reports.iter().enumerate() {
            for (j, &gid) in gids[s].iter().enumerate() {
                stream_rows[gid as usize] = Some(rep.streams[j].clone());
            }
        }
        let streams: Vec<StreamReport> = stream_rows
            .into_iter()
            .map(|r| r.expect("every stream is owned by exactly one shard"))
            .collect();
        let mut mac_stats = Vec::with_capacity(self.stations.len());
        let mut mac_drops = Vec::with_capacity(self.stations.len());
        for (i, &isl) in part.station_island.iter().enumerate() {
            let owner = shard_of[isl as usize] as usize;
            mac_stats.push(reports[owner].mac_stats[i]);
            mac_drops.push(reports[owner].mac_drops[i]);
        }
        let mut queue_stats = macaw_sim::QueueStats::default();
        for rep in &reports {
            queue_stats.scheduled += rep.queue_stats.scheduled;
            queue_stats.popped += rep.queue_stats.popped;
            queue_stats.cancelled += rep.queue_stats.cancelled;
            queue_stats.high_water += rep.queue_stats.high_water;
        }
        let report = RunReport {
            measured_secs: measured,
            streams,
            station_names: reports[0].station_names.clone(),
            mac_stats,
            mac_drops,
            data_air_secs: data_ns as f64 / 1e9,
            total_air_secs: air_ns as f64 / 1e9,
            events_processed: total_events,
            queue_stats,
        };

        let max_wall = walls.iter().cloned().fold(0.0f64, f64::max);
        let barrier_wait_share = if max_wall > 0.0 {
            walls.iter().map(|w| max_wall - w).sum::<f64>() / (n_shards as f64 * max_wall)
        } else {
            0.0
        };
        let sizes = part.island_sizes();
        let per_shard = (0..n_shards)
            .map(|s| ShardStats {
                islands: shard_of.iter().filter(|&&o| o as usize == s).count(),
                stations: part
                    .station_island
                    .iter()
                    .filter(|&&i| shard_of[i as usize] as usize == s)
                    .count(),
                streams: gids[s].len(),
                events: events[s],
                wall_secs: walls[s],
            })
            .collect();
        let stats = ShardRunStats {
            shards: n_shards,
            islands: part.n_islands,
            largest_island: sizes.iter().copied().max().unwrap_or(0),
            epochs: 1,
            barrier_wait_share,
            medium,
            per_shard,
        };
        Ok((report, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use macaw_sim::SimDuration;

    fn two_station_scenario() -> (Scenario, usize, usize) {
        let mut sc = Scenario::new(1);
        let a = sc.add_station("A", Point::new(0.0, 0.0, 6.0), MacKind::Macaw);
        let b = sc.add_station("B", Point::new(3.0, 0.0, 0.0), MacKind::Macaw);
        (sc, a, b)
    }

    #[test]
    fn stream_to_unknown_station_is_rejected() {
        let (mut sc, a, _) = two_station_scenario();
        sc.add_udp_stream("bad", a, 99, 32, 512);
        let err = sc.build().unwrap_err();
        assert!(
            err.to_string().contains("unknown destination"),
            "got: {err}"
        );
    }

    #[test]
    fn stream_to_self_is_rejected() {
        let (mut sc, a, _) = two_station_scenario();
        sc.add_udp_stream("self", a, a, 32, 512);
        let err = sc.build().unwrap_err();
        assert!(err.to_string().contains("stream to self"), "got: {err}");
    }

    #[test]
    fn tcp_multicast_is_rejected() {
        let (mut sc, a, b) = two_station_scenario();
        sc.add_stream(StreamSpec {
            name: "mc".into(),
            src: a,
            dst: Dest::Group {
                group: 1,
                members: vec![b],
            },
            transport: TransportKind::Tcp(TcpConfig::default()),
            source: SourceKind::Cbr { pps: 1 },
            bytes: 512,
            start: SimTime::ZERO,
            stop: None,
        });
        let err = sc.build().unwrap_err();
        assert!(
            err.to_string().contains("multicast streams are UDP only"),
            "got: {err}"
        );
    }

    #[test]
    fn warmup_longer_than_run_is_rejected() {
        let (mut sc, a, b) = two_station_scenario();
        sc.add_udp_stream("s", a, b, 32, 512);
        let err = sc
            .run(SimDuration::from_secs(5), SimDuration::from_secs(10))
            .unwrap_err();
        assert!(
            err.to_string().contains("warmup must end before"),
            "got: {err}"
        );
    }

    #[test]
    fn first_defect_wins_and_is_kept_across_later_calls() {
        let (mut sc, a, _) = two_station_scenario();
        sc.set_tx_power(99, 2.0); // unknown station
        sc.add_udp_stream("bad", a, 99, 32, 512); // also bad, but second
        let err = sc.build().unwrap_err();
        assert!(err.to_string().contains("set_tx_power"), "got: {err}");
    }

    #[test]
    fn fault_builders_validate_their_arguments() {
        let (mut sc, a, b) = two_station_scenario();
        sc.crash_at(SimTime::ZERO, 99, true);
        let err = sc.build().unwrap_err();
        assert!(err.to_string().contains("crash_at"), "got: {err}");

        let (mut sc, a2, _) = two_station_scenario();
        sc.set_link_gain_at(SimTime::ZERO, a2, a2, 0.5);
        let err = sc.build().unwrap_err();
        assert!(err.to_string().contains("must differ"), "got: {err}");

        let (mut sc, ..) = two_station_scenario();
        sc.corrupt_link(
            a,
            b,
            SimTime::ZERO + SimDuration::from_secs(2),
            SimTime::ZERO + SimDuration::from_secs(1),
            SimDuration::from_millis(1),
        );
        let err = sc.build().unwrap_err();
        assert!(err.to_string().contains("empty window"), "got: {err}");
    }

    #[test]
    fn stream_stop_time_is_honored() {
        let (mut sc, a, b) = two_station_scenario();
        sc.add_stream(StreamSpec {
            name: "short".into(),
            src: a,
            dst: Dest::Station(b),
            transport: TransportKind::Udp,
            source: SourceKind::Cbr { pps: 32 },
            bytes: 512,
            start: SimTime::ZERO,
            stop: Some(SimTime::ZERO + SimDuration::from_secs(10)),
        });
        let r = sc.run(SimDuration::from_secs(60), SimDuration::ZERO).unwrap();
        // ~10 s of a 32 pps stream, not 60 s worth.
        assert!(r.stream("short").offered <= 10 * 32 + 2);
        assert!(r.stream("short").offered >= 8 * 32);
    }

    #[test]
    fn stream_start_offset_is_honored() {
        let (mut sc, a, b) = two_station_scenario();
        sc.add_stream(StreamSpec {
            name: "late".into(),
            src: a,
            dst: Dest::Station(b),
            transport: TransportKind::Udp,
            source: SourceKind::Cbr { pps: 32 },
            bytes: 512,
            start: SimTime::ZERO + SimDuration::from_secs(30),
            stop: None,
        });
        let r = sc.run(SimDuration::from_secs(60), SimDuration::ZERO).unwrap();
        assert!(r.stream("late").offered <= 30 * 32 + 2);
    }

    #[test]
    fn poisson_source_offers_approximately_its_rate() {
        let (mut sc, a, b) = two_station_scenario();
        sc.add_stream(StreamSpec {
            name: "poisson".into(),
            src: a,
            dst: Dest::Station(b),
            transport: TransportKind::Udp,
            source: SourceKind::Poisson { pps: 20.0 },
            bytes: 512,
            start: SimTime::ZERO,
            stop: None,
        });
        let r = sc.run(SimDuration::from_secs(120), SimDuration::ZERO).unwrap();
        let rate = r.stream("poisson").offered as f64 / 120.0;
        assert!((rate - 20.0).abs() < 3.0, "offered rate = {rate}");
    }

    #[test]
    fn mixed_protocols_in_one_cell_interoperate() {
        // A CSMA station and a MACAW pair share a cell without panics; the
        // MACAW exchange still completes.
        let mut sc = Scenario::new(9);
        let b = sc.add_station("B", Point::new(0.0, 0.0, 6.0), MacKind::Macaw);
        let p = sc.add_station("P", Point::new(3.0, 0.0, 0.0), MacKind::Macaw);
        let noisy = sc.add_station("N", Point::new(-3.0, 0.0, 0.0), MacKind::Csma(Default::default()));
        sc.add_udp_stream("P-B", p, b, 16, 512);
        sc.add_udp_stream("N-B", noisy, b, 16, 512);
        let r = sc.run(SimDuration::from_secs(60), SimDuration::from_secs(5)).unwrap();
        assert!(r.throughput("P-B") > 5.0);
    }

    #[test]
    fn asymmetric_power_starves_the_quiet_direction() {
        // §4's concern, end to end: a loud base reaches a distant pad, but
        // the pad's CTS/data cannot reach back, so the downlink exchange
        // never completes under MACAW.
        let mut sc = Scenario::new(6);
        let b = sc.add_station("B", Point::new(0.0, 0.0, 6.0), MacKind::Macaw);
        let p = sc.add_station("P", Point::new(12.0, 0.0, 0.0), MacKind::Macaw);
        sc.set_tx_power(b, 1000.0);
        sc.add_udp_stream("B-P", b, p, 16, 512);
        let r = sc.run(SimDuration::from_secs(30), SimDuration::from_secs(2)).unwrap();
        assert_eq!(
            r.stream("B-P").delivered,
            0,
            "RTS arrives but the CTS cannot return: no exchange completes"
        );
    }

    #[test]
    fn group_members_are_auto_joined() {
        let mut sc = Scenario::new(2);
        let a = sc.add_station("A", Point::new(0.0, 0.0, 6.0), MacKind::Macaw);
        let b = sc.add_station("B", Point::new(3.0, 0.0, 0.0), MacKind::Macaw);
        let c = sc.add_station("C", Point::new(-3.0, 0.0, 0.0), MacKind::Macaw);
        sc.add_stream(StreamSpec {
            name: "mc".into(),
            src: a,
            dst: Dest::Group {
                group: 7,
                members: vec![b, c],
            },
            transport: TransportKind::Udp,
            source: SourceKind::Cbr { pps: 8 },
            bytes: 512,
            start: SimTime::ZERO,
            stop: None,
        });
        let r = sc.run(SimDuration::from_secs(30), SimDuration::from_secs(2)).unwrap();
        // Two members => up to 2 deliveries per generated packet.
        let s = r.stream("mc");
        assert!(s.delivered > s.offered, "multicast must fan out: {} vs {}", s.delivered, s.offered);
        assert!(s.delivered <= 2 * s.offered);
    }
}
