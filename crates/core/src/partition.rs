//! Conservative coupling partition: the islands a scenario decomposes into.
//!
//! The paper's near-field radio propagates *instantaneously* in the model
//! (zero propagation delay, per §2.1 and the paper's own simulator): a
//! carrier raised at station A is sensed by every in-range station at the
//! same simulated instant. Two stations that can ever hear — or interfere
//! with — each other therefore have **zero lookahead** between them, and no
//! conservative window, however derived, can let their event loops drift
//! apart. Conversely, under the hard interference cutoff a transmission
//! contributes *exactly* `+0.0` power beyond the 10 ft reception ball, so
//! two stations that can never reach each other share no observable state
//! at all. The sound unit of parallelism is thus the connected component of
//! the "can ever couple" graph — an **island** — and this module computes
//! that graph conservatively from the declarative [`Scenario`]:
//!
//! * **Geometry** — stations couple when any pair of their position
//!   instances (initial placement plus every scheduled `Move` target) comes
//!   within `max(reach_a, reach_b) + PAD` feet, where `reach_s = 10 ·
//!   (tx_power_s · max_link)^(1/γ)` is the stretched reception radius under
//!   the largest link-gain factor any action ever sets, and
//!   [`COUPLING_PAD_FT`] absorbs the medium's cube-center snapping. This
//!   over-approximates every radio interaction: interference (a 10 ft ball
//!   independent of power — the cutoff tests the raw geometric gain),
//!   reception, carrier sense, and link-gain rechecks.
//! * **Receiver-noise clique** — stations with a nonzero `rx_error_rate`
//!   draw from the *single shared* medium RNG stream on every clean
//!   delivery, so their relative delivery order is observable: they are all
//!   chained into one island.
//! * **Noise emitters** — every station that can ever sit inside an
//!   emitter's 10 ft ball (again power-independent) shares that emitter's
//!   ambient term; all hearers of one emitter are chained together and the
//!   emitter's toggle actions belong to that island. An emitter nobody can
//!   ever hear gets its own *synthetic* island so its (behaviorally inert)
//!   toggle events still have a deterministic home in the per-island event
//!   accounting.
//!
//! Streams and corruption windows need no edges of their own: endpoints
//! that are in range are already geometrically coupled, and endpoints that
//! never are cannot exchange a single frame — the sender's futile RTS
//! attempts play out entirely inside its own island.
//!
//! Under [`CutoffMode::Physical`] every station interferes with every other
//! at any distance, so the whole scenario is one island and a sharded run
//! degenerates (correctly) to the serial engine.
//!
//! [`CutoffMode::Physical`]: macaw_phy::CutoffMode::Physical

use std::collections::HashMap;

use macaw_phy::{CutoffMode, MediumStats, Point};

use crate::network::ActionKind;
use crate::scenario::Scenario;

/// Slack added to every conservative coupling radius, in feet. The medium
/// snaps station and noise positions to 1 ft³ cube centers, displacing each
/// endpoint by at most √3/2 ft; 2.0 ft covers both endpoints of any pair
/// with margin. Padding only ever *merges* islands, so it can cost
/// parallelism but never correctness.
const COUPLING_PAD_FT: f64 = 2.0;

/// The island decomposition of a scenario (see module docs). Island ids are
/// dense, deterministic (numbered by the smallest station index they
/// contain, synthetic noise islands last) and identical for the full
/// scenario and for any projection of it that keeps whole islands.
#[derive(Clone, Debug)]
pub struct Partition {
    /// Total island count, including synthetic islands for unheard noise
    /// emitters.
    pub n_islands: usize,
    /// Island of each station, by station index.
    pub station_island: Vec<u32>,
    /// Island of each declared stream (its source station's island).
    pub stream_island: Vec<u32>,
    /// Island of each scheduled action, in declaration order.
    pub action_island: Vec<u32>,
    /// Island of each corruption window (its source station's island).
    pub window_island: Vec<u32>,
    /// Island of each noise emitter: its hearers' island, or a synthetic
    /// island of its own when nothing can ever hear it.
    pub noise_island: Vec<u32>,
}

impl Partition {
    /// Stations per island (station islands only; synthetic islands are
    /// empty by construction and report zero).
    pub fn island_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.n_islands];
        for &i in &self.station_island {
            sizes[i as usize] += 1;
        }
        sizes
    }

    /// Deterministic longest-processing-time assignment of islands to
    /// `shards` bins, balancing an event-volume proxy (streams dominate,
    /// stations and actions tie-break). Returns the shard of each island.
    /// Islands sort by (weight desc, id asc); ties in bin load go to the
    /// lowest-numbered shard, so the mapping is a pure function of the
    /// partition and the shard count.
    pub fn assign_shards(&self, shards: usize) -> Vec<u32> {
        let shards = shards.max(1);
        let mut weight = vec![1u64; self.n_islands];
        for &i in &self.station_island {
            weight[i as usize] += 1;
        }
        for &i in &self.stream_island {
            weight[i as usize] += 64;
        }
        for &i in &self.action_island {
            weight[i as usize] += 4;
        }
        let mut order: Vec<usize> = (0..self.n_islands).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(weight[i]), i));
        let mut load = vec![0u64; shards];
        let mut shard_of = vec![0u32; self.n_islands];
        for i in order {
            let mut best = 0;
            for s in 1..shards {
                if load[s] < load[best] {
                    best = s;
                }
            }
            shard_of[i] = best as u32;
            load[best] += weight[i];
        }
        shard_of
    }
}

/// Per-shard execution record of one sharded run.
#[derive(Clone, Debug)]
pub struct ShardStats {
    /// Islands this shard owned.
    pub islands: usize,
    /// Stations in those islands (every shard *replicates* all stations,
    /// but only these ever process an event).
    pub stations: usize,
    /// Streams this shard drove.
    pub streams: usize,
    /// Simulation events the shard's loop processed.
    pub events: u64,
    /// Wall-clock seconds the shard's thread spent running.
    pub wall_secs: f64,
}

/// Execution statistics of a [`Scenario::run_with_shards`] call. Kept
/// *outside* [`RunReport`](crate::stats::RunReport) on purpose: the report
/// is bitwise-identical to the serial engine's, while these numbers
/// (wall-clock, load split) legitimately vary run to run.
///
/// [`Scenario::run_with_shards`]: crate::scenario::Scenario::run_with_shards
#[derive(Clone, Debug)]
pub struct ShardRunStats {
    /// Shards requested (and spawned; some may own zero islands).
    pub shards: usize,
    /// Islands in the scenario's coupling partition.
    pub islands: usize,
    /// Stations in the largest island — the serial floor no shard count
    /// can break through.
    pub largest_island: usize,
    /// Lockstep epochs executed. Always 1 in this engine: the model's
    /// zero propagation delay gives zero lookahead *within* an island and
    /// infinite lookahead *between* islands, so the epoch ladder
    /// degenerates to a single run-to-completion epoch per shard with one
    /// final join barrier (see DESIGN.md "Parallel DES").
    pub epochs: u64,
    /// Share of total shard wall-time spent waiting at the final join:
    /// `Σ(max_wall − wall_i) / (shards · max_wall)`. 0 = perfectly
    /// balanced, →1 = one shard did all the work.
    pub barrier_wait_share: f64,
    /// Medium operation counters merged across shards (ops and fold terms
    /// sum; slab high-water is the per-shard max). Like the rest of this
    /// struct they live outside [`RunReport`](crate::stats::RunReport) so
    /// instrumentation can never perturb the bitwise-identity contract.
    pub medium: MediumStats,
    /// Per-shard records, by shard index.
    pub per_shard: Vec<ShardStats>,
}

/// Union-find over station indices.
struct Dsu {
    parent: Vec<u32>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n as u32).collect(),
        }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Smaller root wins: keeps the final labeling independent of
            // union order (any deterministic rule would do).
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi as usize] = lo;
        }
    }
}

/// Compute the island partition of a (defect-free) scenario. See the
/// module docs for the coupling rules; [`Scenario::partition`] is the
/// validated public entry point.
pub(crate) fn compute(sc: &Scenario) -> Partition {
    let n = sc.stations.len();
    let cfg = sc.prop;
    let physical = matches!(cfg.cutoff, CutoffMode::Physical);
    let mut dsu = Dsu::new(n);

    // Largest link-gain factor any action ever sets (monotone bound, as in
    // the sparse medium's ring-search sizing).
    let mut max_link = 1.0f64;
    for a in &sc.actions {
        if let ActionKind::SetLinkGain { factor, .. } = a.kind {
            max_link = max_link.max(factor);
        }
    }

    // Every position a station can ever occupy: initial plus Move targets.
    let mut instances: Vec<(u32, Point)> = sc
        .stations
        .iter()
        .enumerate()
        .map(|(i, s)| (i as u32, s.pos))
        .collect();
    for a in &sc.actions {
        match a.kind {
            ActionKind::Move { station, to } => instances.push((station as u32, to)),
            ActionKind::MoveBatch { start, len } => {
                for &(id, to) in &sc.moves[start as usize..(start + len) as usize] {
                    instances.push((id.0 as u32, to));
                }
            }
            _ => {}
        }
    }

    // A move batch is a single event that touches the medium state of
    // every station it names, so all of them must share an island.
    for a in &sc.actions {
        if let ActionKind::MoveBatch { start, len } = a.kind {
            let batch = &sc.moves[start as usize..(start + len) as usize];
            for w in batch.windows(2) {
                dsu.union(w[0].0 .0 as u32, w[1].0 .0 as u32);
            }
        }
    }

    if physical {
        for i in 1..n as u32 {
            dsu.union(0, i);
        }
    } else if n > 1 {
        // Stretched reception radius per station; the interference ball
        // (exactly `threshold_distance_ft`, power-independent) is always
        // covered because the effective multiplier is clamped at ≥ 1.
        let reach: Vec<f64> = sc
            .stations
            .iter()
            .map(|s| {
                let eff = (s.tx_power * max_link).max(1.0);
                cfg.threshold_distance_ft * eff.powf(1.0 / cfg.gamma)
            })
            .collect();
        let max_radius = reach.iter().cloned().fold(0.0f64, f64::max) + COUPLING_PAD_FT;
        let edge = max_radius.ceil().max(1.0);
        let cell = |p: Point| {
            [
                (p.x / edge).floor() as i64,
                (p.y / edge).floor() as i64,
                (p.z / edge).floor() as i64,
            ]
        };
        // Spatial hash over position instances; the map is only ever
        // queried (never iterated), so HashMap order cannot leak into the
        // result.
        let mut grid: HashMap<[i64; 3], Vec<u32>> = HashMap::new();
        for (k, &(_, p)) in instances.iter().enumerate() {
            grid.entry(cell(p)).or_default().push(k as u32);
        }
        for (k, &(a, pa)) in instances.iter().enumerate() {
            let c = cell(pa);
            for dx in -1..=1 {
                for dy in -1..=1 {
                    for dz in -1..=1 {
                        let Some(bucket) = grid.get(&[c[0] + dx, c[1] + dy, c[2] + dz]) else {
                            continue;
                        };
                        for &j in bucket {
                            if (j as usize) <= k {
                                continue; // each unordered pair once
                            }
                            let (b, pb) = instances[j as usize];
                            if a == b {
                                continue;
                            }
                            let r = reach[a as usize].max(reach[b as usize]) + COUPLING_PAD_FT;
                            if pa.distance(pb) <= r {
                                dsu.union(a, b);
                            }
                        }
                    }
                }
            }
        }
    }

    // Receiver-noise clique: all rx-error stations share the medium RNG.
    let mut prev_noisy: Option<u32> = None;
    for (i, s) in sc.stations.iter().enumerate() {
        if s.rx_error_rate > 0.0 {
            if let Some(p) = prev_noisy {
                dsu.union(p, i as u32);
            }
            prev_noisy = Some(i as u32);
        }
    }

    // Noise emitters: chain every station that can ever enter the 10 ft
    // ball (any position instance; the ball is power-independent because
    // the cutoff tests the raw geometric gain).
    let noise_reach = cfg.threshold_distance_ft + COUPLING_PAD_FT;
    let mut first_hearer: Vec<Option<u32>> = vec![None; sc.noise.len()];
    if !physical {
        for (e, &(pos, _, _)) in sc.noise.iter().enumerate() {
            for &(s, p) in &instances {
                if p.distance(pos) <= noise_reach {
                    match first_hearer[e] {
                        None => first_hearer[e] = Some(s),
                        Some(h) => dsu.union(h, s),
                    }
                }
            }
        }
    } else {
        for h in first_hearer.iter_mut() {
            *h = if n > 0 { Some(0) } else { None };
        }
    }

    // Dense renumbering by smallest member station index.
    let mut label = vec![u32::MAX; n];
    let mut next = 0u32;
    for i in 0..n as u32 {
        let r = dsu.find(i) as usize;
        if label[r] == u32::MAX {
            label[r] = next;
            next += 1;
        }
    }
    let station_island: Vec<u32> = (0..n as u32)
        .map(|i| label[dsu.find(i) as usize])
        .collect();

    // Synthetic islands for emitters nobody can ever hear.
    let mut noise_island = vec![0u32; sc.noise.len()];
    for (e, h) in first_hearer.iter().enumerate() {
        noise_island[e] = match h {
            Some(s) => station_island[*s as usize],
            None => {
                let id = next;
                next += 1;
                id
            }
        };
    }

    let stream_island: Vec<u32> = sc
        .streams
        .iter()
        .map(|st| station_island[st.src])
        .collect();
    let action_island: Vec<u32> = sc
        .actions
        .iter()
        .map(|a| match a.kind {
            ActionKind::Move { station, .. }
            | ActionKind::PowerOff { station }
            | ActionKind::PowerOn { station }
            | ActionKind::Crash { station, .. }
            | ActionKind::Restart { station } => station_island[station],
            ActionKind::SetLinkGain { src, .. } => station_island[src],
            ActionKind::SetNoise { index, .. } => noise_island[index],
            // Batches are never empty (the builder drops empty ones), and
            // every batch station shares one island by the unions above.
            ActionKind::MoveBatch { start, .. } => {
                station_island[sc.moves[start as usize].0 .0]
            }
        })
        .collect();
    let window_island: Vec<u32> = sc
        .windows
        .iter()
        .map(|w| station_island[w.src.0])
        .collect();

    Partition {
        n_islands: next as usize,
        station_island,
        stream_island,
        action_island,
        window_island,
        noise_island,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::MacKind;
    use macaw_phy::PropagationConfig;
    use macaw_sim::{SimDuration, SimTime};

    fn at(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn far_stations_form_separate_islands() {
        let mut sc = Scenario::new(1);
        sc.add_station("A", Point::new(0.0, 0.0, 0.0), MacKind::Macaw);
        sc.add_station("B", Point::new(100.0, 0.0, 0.0), MacKind::Macaw);
        let p = sc.partition().unwrap();
        assert_eq!(p.n_islands, 2);
        assert_ne!(p.station_island[0], p.station_island[1]);
    }

    #[test]
    fn in_range_stations_share_an_island() {
        let mut sc = Scenario::new(1);
        sc.add_station("A", Point::new(0.0, 0.0, 0.0), MacKind::Macaw);
        sc.add_station("B", Point::new(9.0, 0.0, 0.0), MacKind::Macaw);
        let p = sc.partition().unwrap();
        assert_eq!(p.n_islands, 1);
    }

    #[test]
    fn a_move_target_merges_its_destination_island() {
        let mut sc = Scenario::new(1);
        let a = sc.add_station("A", Point::new(0.0, 0.0, 0.0), MacKind::Macaw);
        sc.add_station("B", Point::new(100.0, 0.0, 0.0), MacKind::Macaw);
        sc.move_station_at(at(5), a, Point::new(95.0, 0.0, 0.0));
        let p = sc.partition().unwrap();
        assert_eq!(p.n_islands, 1, "the mover can end up in range of B");
        assert_eq!(p.action_island[0], p.station_island[a]);
    }

    #[test]
    fn tx_power_stretches_the_coupling_radius() {
        let mut sc = Scenario::new(1);
        let a = sc.add_station("A", Point::new(0.0, 0.0, 0.0), MacKind::Macaw);
        sc.add_station("B", Point::new(25.0, 0.0, 0.0), MacKind::Macaw);
        assert_eq!(sc.partition().unwrap().n_islands, 2);
        // 10 · 1000^(1/6) ≈ 31.6 ft reach: now coupled.
        sc.set_tx_power(a, 1000.0);
        assert_eq!(sc.partition().unwrap().n_islands, 1);
    }

    #[test]
    fn rx_error_stations_are_chained_into_one_island() {
        let mut sc = Scenario::new(1);
        let a = sc.add_station("A", Point::new(0.0, 0.0, 0.0), MacKind::Macaw);
        let b = sc.add_station("B", Point::new(200.0, 0.0, 0.0), MacKind::Macaw);
        sc.add_station("C", Point::new(400.0, 0.0, 0.0), MacKind::Macaw);
        assert_eq!(sc.partition().unwrap().n_islands, 3);
        sc.set_rx_error_rate(a, 0.01);
        sc.set_rx_error_rate(b, 0.01);
        let p = sc.partition().unwrap();
        assert_eq!(p.n_islands, 2, "shared medium RNG couples A and B");
        assert_eq!(p.station_island[0], p.station_island[1]);
    }

    #[test]
    fn noise_emitters_couple_their_hearers_or_get_synthetic_islands() {
        let mut sc = Scenario::new(1);
        sc.add_station("A", Point::new(0.0, 0.0, 0.0), MacKind::Macaw);
        sc.add_station("B", Point::new(16.0, 0.0, 0.0), MacKind::Macaw);
        // An emitter between them: both are within its 10+pad ball.
        let heard = sc.add_noise_source(Point::new(8.0, 0.0, 0.0), 4.0, false);
        // An emitter in the void: nobody can ever hear it.
        let orphan = sc.add_noise_source(Point::new(500.0, 0.0, 0.0), 4.0, false);
        sc.set_noise_at(at(1), heard, true);
        sc.set_noise_at(at(2), orphan, true);
        let p = sc.partition().unwrap();
        assert_eq!(p.station_island[0], p.station_island[1]);
        assert_eq!(p.noise_island[heard], p.station_island[0]);
        assert_eq!(p.noise_island[orphan] as usize, p.n_islands - 1);
        assert_eq!(p.n_islands, 2, "one station island plus one synthetic");
        assert_eq!(p.action_island[1], p.noise_island[orphan]);
    }

    #[test]
    fn physical_cutoff_collapses_everything_into_one_island() {
        let mut sc = Scenario::new(1);
        sc.propagation(PropagationConfig {
            cutoff: macaw_phy::CutoffMode::Physical,
            ..PropagationConfig::default()
        });
        sc.add_station("A", Point::new(0.0, 0.0, 0.0), MacKind::Macaw);
        sc.add_station("B", Point::new(1000.0, 0.0, 0.0), MacKind::Macaw);
        assert_eq!(sc.partition().unwrap().n_islands, 1);
    }

    #[test]
    fn shard_assignment_is_deterministic_and_balanced() {
        let mut sc = Scenario::new(1);
        // Eight well-separated pairs, one stream each.
        for i in 0..8 {
            let x = i as f64 * 50.0;
            let a = sc.add_station(&format!("A{i}"), Point::new(x, 0.0, 0.0), MacKind::Macaw);
            let b = sc.add_station(&format!("B{i}"), Point::new(x + 5.0, 0.0, 0.0), MacKind::Macaw);
            sc.add_udp_stream(&format!("s{i}"), a, b, 16, 512);
        }
        let p = sc.partition().unwrap();
        assert_eq!(p.n_islands, 8);
        let s4 = p.assign_shards(4);
        assert_eq!(s4, p.assign_shards(4), "assignment is a pure function");
        let mut counts = [0usize; 4];
        for &s in &s4 {
            counts[s as usize] += 1;
        }
        assert_eq!(counts, [2, 2, 2, 2], "equal islands spread evenly");
        // One shard: everything lands in shard 0.
        assert!(p.assign_shards(1).iter().all(|&s| s == 0));
    }
}
