//! The simulated network: radio medium + MAC state machines + transports +
//! traffic generators, driven by one deterministic event loop.
//!
//! # Event model
//!
//! End-of-transmission (frame delivery), application packet arrivals and
//! scheduled scenario actions (mobility, power, noise) flow through one
//! totally-ordered event queue. MAC and transport timers do *not*: each
//! station (and each transport endpoint) has at most one live timer, and a
//! busy MAC re-arms its defer timer on nearly every overheard frame — so
//! queueing timers would fill the heap with superseded entries (measured at
//! ~37% of all pops). Instead each timer lives in its owner's slot as a
//! `(deadline, sort key)` pair, with the sort key drawn from the queue's own
//! insertion counter ([`EventQueue::alloc_key`]); the run loop fires
//! whichever of the queue head and the earliest timer sorts first, which
//! interleaves them exactly as if every timer had been queued. Re-arming a
//! timer is then an O(1) overwrite instead of a heap push plus a stale pop.
//!
//! End-of-transmission events carry a lower same-instant priority value
//! than timers, so a station whose contention slot lands exactly where an
//! overheard frame ends processes the frame — and defers — before its own
//! timer would let it transmit.
//!
//! # Re-entrancy
//!
//! A received DATA packet can make a TCP receiver emit an ACK segment,
//! which re-enters the very MAC that is currently borrowed. All such
//! upcalls are therefore buffered as `Effect`s and drained iteratively
//! after each event handler returns; nothing ever re-enters a borrowed
//! state machine.

use std::collections::VecDeque;

use macaw_mac::context::{MacContext, MacFeedback, MacProtocol, MacResult};
use macaw_mac::frames::{Addr, Frame, MacSdu, StreamId, Timing};
use macaw_phy::{ChaosMedium, Delivery, LinkWindow, Medium, Point, SparseMedium, StationId, TxId};
use macaw_sim::{
    EventQueue, FastHashMap, Fel, FelChoice, LadderFel, NextFire, QueueStats, SimDuration, SimRng,
    SimTime,
};
use macaw_traffic::TrafficSource;
use macaw_transport::{Segment, Transport, TransportContext};

use crate::error::SimError;
use crate::partition::Partition;
use crate::stats::{RunReport, StreamReport};

/// A trace record emitted by [`Network::set_tracer`] hooks. Useful for
/// debugging protocol dynamics and for building packet logs.
#[derive(Clone, Debug)]
pub enum TraceEvent {
    /// A frame finished transmitting; `clean` lists stations that received
    /// it intact, `dirty` those that heard garbage.
    Frame {
        at: SimTime,
        frame: Frame,
        clean: Vec<usize>,
        dirty: Vec<usize>,
    },
    /// A MAC timer fired at a station.
    MacTimer { at: SimTime, station: usize },
}

/// Same-instant priority for end-of-transmission (frame delivery) events.
const PRIO_TX_END: u8 = 0;
/// Same-instant priority for every kind of timer.
const PRIO_TIMER: u8 = 128;

/// Which endpoint of a stream.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Side {
    Sender,
    Receiver,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Event {
    /// A station's transmission ends; deliver to everyone in range. The
    /// `epoch` stamps which incarnation of the station keyed up: a crash
    /// aborts the transmission and bumps the station's epoch, so the
    /// already-queued TxEnd arrives stale and must be ignored (a restarted
    /// station may have a *new* transmission in flight by then).
    TxEnd { station: u32, epoch: u32 },
    /// The application on a stream produces its next packet.
    AppArrival { stream: u32 },
    /// A scheduled scenario action (mobility / power / noise) fires.
    Action { index: u32 },
}

/// Hard cap on events processed at a single simulated instant. The
/// legitimate same-instant burst is bounded by stations + streams (every
/// timer plus every frame end firing together); a station re-arming a
/// zero-length timer from its own timer handler is the classic livelock
/// and blows past this within a millisecond of wall time.
const LIVELOCK_SAME_INSTANT_CAP: u64 = 100_000;

/// A pending timer held outside the event queue: fire time plus the sort
/// key ([`EventQueue::alloc_key`]) that orders it against queued events.
/// "No timer" is the [`NO_TIMER`] sentinel rather than an `Option` so the
/// per-event min scan over all timer slots stays branch-light: the sentinel
/// compares greater than every real timer (real sort keys fit in 8+56 bits,
/// so they never reach `u64::MAX`).
type PendingTimer = (SimTime, u64);

/// Sentinel for an idle timer slot; loses every `<` comparison.
const NO_TIMER: PendingTimer = (SimTime::from_nanos(u64::MAX), u64::MAX);

/// Bit marking a [`TimerIndex`] slot index as a transport (not MAC) slot.
const TP_SLOT: u32 = 1 << 31;

/// Marker for "this slot has no heap node" in the [`TimerIndex`] position
/// maps.
const TIMER_ABSENT: u32 = u32::MAX;

/// [`TimerIndex`] heap arity (same fan-out as the simulator's FEL heaps).
const TIMER_ARITY: usize = 4;

/// Incremental index of pending timers: an array-backed 4-ary min-heap
/// with decrease-key support. Each armed slot owns at most one heap node,
/// found through a dense position map (`pos_mac` by station, `pos_tp` by
/// transport slot), so re-arming a timer moves its node in place and
/// clearing one deletes it — [`TimerIndex::peek`] is O(1) and exact, with
/// no stale entries to drain. The lazy-deletion predecessor of this index
/// pushed a fresh node on every write and left the superseded one to be
/// popped later; with a busy MAC re-arming its defer timer on nearly
/// every overheard frame, that cost ~1.6 pushes plus ~0.9 dead pops per
/// simulation event and dominated the run loop. Sort keys come from
/// [`EventQueue::alloc_key`]'s globally unique counter, so the minimum is
/// unambiguous and fire order is identical to a full linear scan (kept as
/// the `scan_timers` debug oracle).
#[derive(Default)]
struct TimerIndex {
    /// Heap nodes `(deadline, sort key, slot)`, minimum at index 0.
    heap: Vec<(SimTime, u64, u32)>,
    /// Station index → heap position, or [`TIMER_ABSENT`].
    pos_mac: Vec<u32>,
    /// Transport slot index → heap position, or [`TIMER_ABSENT`].
    pos_tp: Vec<u32>,
}

impl TimerIndex {
    /// Register one MAC timer slot (a new station).
    fn add_mac_slot(&mut self) {
        self.pos_mac.push(TIMER_ABSENT);
    }

    /// Register `n` transport timer slots (a new stream adds two).
    fn add_tp_slots(&mut self, n: usize) {
        let len = self.pos_tp.len() + n;
        self.pos_tp.resize(len, TIMER_ABSENT);
    }

    /// The earliest pending timer across every slot, O(1).
    #[inline]
    fn peek(&self) -> Option<(SimTime, u64, u32)> {
        self.heap.first().copied()
    }

    #[inline]
    fn pos(&mut self, slot: u32) -> &mut u32 {
        if slot & TP_SLOT != 0 {
            &mut self.pos_tp[(slot & !TP_SLOT) as usize]
        } else {
            &mut self.pos_mac[slot as usize]
        }
    }

    /// Account for `slot` being overwritten with `tk` (possibly
    /// [`NO_TIMER`]): insert, move, or delete the slot's node in place.
    fn note_write(&mut self, slot: u32, tk: PendingTimer) {
        let p = *self.pos(slot);
        if tk == NO_TIMER {
            if p != TIMER_ABSENT {
                self.remove(p as usize);
            }
        } else if p != TIMER_ABSENT {
            let i = p as usize;
            self.heap[i].0 = tk.0;
            self.heap[i].1 = tk.1;
            self.restore(i);
        } else {
            self.heap.push((tk.0, tk.1, slot));
            let i = self.heap.len() - 1;
            *self.pos(slot) = i as u32;
            self.sift_up(i);
        }
    }

    #[inline]
    fn key(&self, i: usize) -> (SimTime, u64) {
        (self.heap[i].0, self.heap[i].1)
    }

    /// Point the position map at the node currently sitting at `i`.
    #[inline]
    fn place(&mut self, i: usize) {
        let slot = self.heap[i].2;
        *self.pos(slot) = i as u32;
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / TIMER_ARITY;
            if self.key(parent) <= self.key(i) {
                break;
            }
            self.heap.swap(parent, i);
            self.place(i);
            i = parent;
        }
        self.place(i);
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let first = i * TIMER_ARITY + 1;
            if first >= self.heap.len() {
                break;
            }
            let last = (first + TIMER_ARITY).min(self.heap.len());
            let mut min = first;
            for c in first + 1..last {
                if self.key(c) < self.key(min) {
                    min = c;
                }
            }
            if self.key(i) <= self.key(min) {
                break;
            }
            self.heap.swap(i, min);
            self.place(i);
            i = min;
        }
        self.place(i);
    }

    /// Re-establish the heap property around `i` after its key changed.
    fn restore(&mut self, i: usize) {
        if i > 0 && self.key((i - 1) / TIMER_ARITY) > self.key(i) {
            self.sift_up(i);
        } else {
            self.sift_down(i);
        }
    }

    fn remove(&mut self, i: usize) {
        let slot = self.heap[i].2;
        *self.pos(slot) = TIMER_ABSENT;
        let last = self.heap.len() - 1;
        if i != last {
            self.heap.swap(i, last);
            self.heap.pop();
            self.restore(i);
        } else {
            self.heap.pop();
        }
    }
}

/// Deferred upcalls, drained after each event handler returns.
enum Effect {
    MacEnqueue {
        station: usize,
        dst: Addr,
        sdu: MacSdu,
    },
    DeliverUp {
        station: usize,
        sdu: MacSdu,
    },
    SendSegment {
        stream: usize,
        side: Side,
        seg: Segment,
    },
    AppDeliver {
        stream: usize,
        bytes: u32,
    },
    Feedback {
        station: usize,
        fb: MacFeedback,
    },
}

/// Scheduled scenario actions.
#[derive(Clone, Copy, Debug)]
pub(crate) enum ActionKind {
    /// Move a station (mobility).
    Move { station: usize, to: Point },
    /// Move several stations at one instant: entries `start..start + len`
    /// of the network's move table, applied through
    /// [`Medium::set_positions`] so the medium coalesces the interference
    /// re-folds across the batch. The table lives outside this enum so the
    /// action stays `Copy`.
    MoveBatch { start: u32, len: u32 },
    /// Power a station off (the Figure-9 "pad is turned off").
    PowerOff { station: usize },
    /// Power a station back on.
    PowerOn { station: usize },
    /// Toggle a spatial noise emitter.
    SetNoise { index: usize, active: bool },
    /// Crash a station: any frame in flight is truncated on the air, the
    /// MAC's volatile state (backoff tables, exchange progress) is wiped,
    /// and the station goes deaf until a matching [`ActionKind::Restart`].
    Crash {
        station: usize,
        preserve_queues: bool,
    },
    /// Bring a crashed (or powered-off) station back up and kick its MAC
    /// so preserved queues resume contention.
    Restart { station: usize },
    /// Scale one directional link's gain (asymmetry fault).
    SetLinkGain { src: usize, dst: usize, factor: f64 },
}

#[derive(Clone, Copy, Debug)]
pub(crate) struct ScheduledAction {
    pub at: SimTime,
    pub kind: ActionKind,
}

struct StationSlot {
    name: String,
    mac: Option<Box<dyn MacProtocol>>,
    rng: SimRng,
    /// The in-flight own transmission, if any.
    tx: Option<(TxId, Frame)>,
    on: bool,
    /// Incarnation counter; bumped by a crash so stale TxEnd events from
    /// the previous life are recognizable (see [`Event::TxEnd`]).
    epoch: u32,
    /// Packets dropped by this station's MAC after retry exhaustion.
    mac_drops: u64,
}

/// Where the packets of a stream go.
enum StreamDst {
    /// A single receiving station with a transport endpoint.
    Unicast {
        station: usize,
        endpoint: Option<Box<dyn Transport>>,
    },
    /// A multicast group (§3.3.4): members just count deliveries.
    Multicast { group: u32, members: Vec<usize> },
}

struct StreamState {
    name: String,
    id: StreamId,
    src: usize,
    dst: StreamDst,
    bytes: u32,
    source: Box<dyn TrafficSource>,
    rng: SimRng,
    start: SimTime,
    stop: Option<SimTime>,
    sender: Option<Box<dyn Transport>>,
    offered: u64,
    delivered: u64,
    offered_measured: u64,
    delivered_measured: u64,
    delivered_bytes_measured: u64,
}

/// The assembled simulated network. Build one through
/// [`crate::scenario::Scenario`].
///
/// Generic over the [`Medium`] implementation so the same event loop can
/// run on the cube-grid [`SparseMedium`] (the default) or the dense-matrix
/// oracle — the `scale` bench and the oracle tests exercise both. Likewise
/// generic over the future-event-list family ([`FelChoice`]): the ladder
/// queue by default, the plain 4-ary heap as the oracle the equivalence
/// tests compare against.
pub struct Network<M: Medium = SparseMedium, Q: FelChoice = LadderFel> {
    pub(crate) medium: ChaosMedium<M>,
    queue: EventQueue<Event, Q::Fel<Event>>,
    timing: Timing,
    stations: Vec<StationSlot>,
    streams: Vec<StreamState>,
    /// Stream id → index into `streams`, built as streams are declared.
    /// Delivery and drop feedback resolve their stream through this map
    /// instead of scanning `streams` — O(1) per delivered SDU rather than
    /// O(streams).
    stream_index: FastHashMap<u32, usize>,
    /// MAC timer slot per station (dense, scanned every event).
    mac_timers: Vec<PendingTimer>,
    /// Transport timer slots, two per stream (`2*stream + side`, sender
    /// first). Multicast streams' receiver slots simply stay idle.
    tp_timers: Vec<PendingTimer>,
    /// Earliest-pending-timer index over `mac_timers` + `tp_timers`.
    timer_index: TimerIndex,
    actions: Vec<ScheduledAction>,
    /// Flat move table for [`ActionKind::MoveBatch`]: each batch action
    /// names a `start..start + len` slice of this vector.
    moves: Vec<(StationId, Point)>,
    effects: VecDeque<Effect>,
    warmup_end: SimTime,
    /// Total on-air time of DATA frames after warm-up (utilization).
    data_air_ns: u64,
    /// Total on-air time of all frames after warm-up.
    air_ns: u64,
    /// Events popped from the queue so far (perf accounting).
    events_processed: u64,
    /// Reusable delivery buffer for [`Medium::end_tx_into`], so frame
    /// delivery allocates nothing in steady state.
    delivery_buf: Vec<Delivery>,
    /// Island of each station / stream / scheduled action under the
    /// scenario's coupling partition ([`crate::partition`]), installed by
    /// the builder before [`Network::prime`].
    island_of_station: Vec<u32>,
    island_of_stream: Vec<u32>,
    island_of_action: Vec<u32>,
    /// Live queued-event count per island, mirroring the event queue's own
    /// live count (core never cancels, so live = queued): +1 on schedule,
    /// −1 on pop. Timers live outside the queue and are not counted —
    /// exactly as in [`EventQueue`]'s accounting.
    island_live: Vec<usize>,
    /// Per-island high-water mark of `island_live`, updated on schedule
    /// only (the queue's own high-water is too). The report sums these, so
    /// the figure decomposes over islands and is identical whether the
    /// islands ran in one event loop or one loop per shard.
    island_high: Vec<usize>,
    /// Optional hard cap on total events processed (fault-run safety net).
    watchdog: Option<u64>,
    /// Same-instant livelock detector: the instant currently being
    /// processed and how many events have fired at it.
    instant: (SimTime, u64),
    tracer: Option<Box<dyn FnMut(TraceEvent)>>,
}

impl<M: Medium, Q: FelChoice> std::fmt::Debug for Network<M, Q> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("stations", &self.stations.len())
            .field("streams", &self.streams.len())
            .field("now", &self.queue.now())
            .field("events_processed", &self.events_processed)
            .finish_non_exhaustive()
    }
}

impl<M: Medium, Q: FelChoice> Network<M, Q> {
    pub(crate) fn new(medium: M, timing: Timing) -> Self {
        Network {
            medium: ChaosMedium::new(medium),
            queue: EventQueue::new(),
            timing,
            stations: Vec::new(),
            streams: Vec::new(),
            stream_index: FastHashMap::default(),
            mac_timers: Vec::new(),
            tp_timers: Vec::new(),
            timer_index: TimerIndex::default(),
            actions: Vec::new(),
            moves: Vec::new(),
            effects: VecDeque::new(),
            warmup_end: SimTime::ZERO,
            data_air_ns: 0,
            air_ns: 0,
            events_processed: 0,
            delivery_buf: Vec::new(),
            island_of_station: Vec::new(),
            island_of_stream: Vec::new(),
            island_of_action: Vec::new(),
            island_live: Vec::new(),
            island_high: Vec::new(),
            watchdog: None,
            instant: (SimTime::ZERO, 0),
            tracer: None,
        }
    }

    /// Cap the total number of events this network may process; exceeding
    /// it makes [`Network::run_until`] fail with
    /// [`SimError::WatchdogTripped`] instead of burning CPU forever. The
    /// same-instant livelock detector is always on regardless.
    pub fn set_watchdog(&mut self, max_events: u64) {
        self.watchdog = Some(max_events);
    }

    /// Schedule a deterministic corruption window on the medium (fault
    /// injection): frames from `w.src` that overlap the window on the air
    /// for at least `w.min_air` arrive dirty at `w.dst`.
    pub fn add_corruption_window(&mut self, w: LinkWindow) {
        self.medium.add_corruption_window(w);
    }

    /// Install a tracer receiving a [`TraceEvent`] per frame and MAC timer.
    pub fn set_tracer(&mut self, tracer: Box<dyn FnMut(TraceEvent)>) {
        self.tracer = Some(tracer);
    }

    pub(crate) fn add_station(
        &mut self,
        name: String,
        mac: Box<dyn MacProtocol>,
        rng: SimRng,
    ) -> usize {
        self.stations.push(StationSlot {
            name,
            mac: Some(mac),
            rng,
            tx: None,
            on: true,
            epoch: 0,
            mac_drops: 0,
        });
        self.mac_timers.push(NO_TIMER);
        self.timer_index.add_mac_slot();
        self.stations.len() - 1
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn add_unicast_stream(
        &mut self,
        name: String,
        id: StreamId,
        src: usize,
        dst: usize,
        bytes: u32,
        source: Box<dyn TrafficSource>,
        rng: SimRng,
        start: SimTime,
        stop: Option<SimTime>,
        sender: Box<dyn Transport>,
        receiver: Box<dyn Transport>,
    ) -> usize {
        self.stream_index.insert(id.0, self.streams.len());
        self.streams.push(StreamState {
            name,
            id,
            src,
            dst: StreamDst::Unicast {
                station: dst,
                endpoint: Some(receiver),
            },
            bytes,
            source,
            rng,
            start,
            stop,
            sender: Some(sender),
            offered: 0,
            delivered: 0,
            offered_measured: 0,
            delivered_measured: 0,
            delivered_bytes_measured: 0,
        });
        self.tp_timers.push(NO_TIMER);
        self.tp_timers.push(NO_TIMER);
        self.timer_index.add_tp_slots(2);
        self.streams.len() - 1
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn add_multicast_stream(
        &mut self,
        name: String,
        id: StreamId,
        src: usize,
        group: u32,
        members: Vec<usize>,
        bytes: u32,
        source: Box<dyn TrafficSource>,
        rng: SimRng,
        start: SimTime,
        stop: Option<SimTime>,
        sender: Box<dyn Transport>,
    ) -> usize {
        self.stream_index.insert(id.0, self.streams.len());
        self.streams.push(StreamState {
            name,
            id,
            src,
            dst: StreamDst::Multicast { group, members },
            bytes,
            source,
            rng,
            start,
            stop,
            sender: Some(sender),
            offered: 0,
            delivered: 0,
            offered_measured: 0,
            delivered_measured: 0,
            delivered_bytes_measured: 0,
        });
        self.tp_timers.push(NO_TIMER);
        self.tp_timers.push(NO_TIMER);
        self.timer_index.add_tp_slots(2);
        self.streams.len() - 1
    }

    pub(crate) fn schedule_action(&mut self, action: ScheduledAction) {
        self.actions.push(action);
    }

    /// Install the move table [`ActionKind::MoveBatch`] actions slice into.
    pub(crate) fn set_moves(&mut self, moves: Vec<(StationId, Point)>) {
        self.moves = moves;
    }

    /// Install the coupling partition's island labels (station, stream and
    /// action rows must match what was added). Called by the builder before
    /// [`Network::prime`] so every queued event can be attributed to its
    /// island for the decomposable high-water accounting.
    pub(crate) fn set_islands(&mut self, p: &Partition) {
        debug_assert_eq!(p.station_island.len(), self.stations.len());
        debug_assert_eq!(p.stream_island.len(), self.streams.len());
        debug_assert_eq!(p.action_island.len(), self.actions.len());
        self.island_of_station = p.station_island.clone();
        self.island_of_stream = p.stream_island.clone();
        self.island_of_action = p.action_island.clone();
        self.island_live = vec![0; p.n_islands];
        self.island_high = vec![0; p.n_islands];
    }

    /// Prime first arrivals and scheduled actions. Called once before
    /// running.
    pub(crate) fn prime(&mut self) {
        for i in 0..self.streams.len() {
            let st = &mut self.streams[i];
            // Random initial phase so same-rate CBR streams are not
            // pathologically synchronized (the paper's generators are
            // independent devices).
            let gap = st.source.next_gap(&mut st.rng);
            let phase =
                SimDuration::from_nanos(st.rng.uniform_inclusive(0, gap.as_nanos().max(1) - 1));
            self.queue
                .schedule(st.start + phase, Event::AppArrival { stream: i as u32 });
            note_island_schedule(
                &mut self.island_live,
                &mut self.island_high,
                self.island_of_stream[i],
            );
        }
        for (i, a) in self.actions.iter().enumerate() {
            self.queue.schedule(a.at, Event::Action { index: i as u32 });
            note_island_schedule(
                &mut self.island_live,
                &mut self.island_high,
                self.island_of_action[i],
            );
        }
    }

    /// Set the end of the statistics warm-up window. [`Scenario::run`]
    /// does this for you; it is public for callers that need to inspect
    /// the built network (e.g. the medium's memory footprint) between
    /// [`Scenario::build`] and [`Network::run_until`].
    ///
    /// [`Scenario::build`]: crate::scenario::Scenario::build
    /// [`Scenario::run`]: crate::scenario::Scenario::run
    pub fn set_warmup(&mut self, end: SimTime) {
        self.warmup_end = end;
    }

    /// Current simulated time (time of the event being/last handled).
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Run until `end`, then stop (events beyond `end` stay queued).
    ///
    /// Fails with [`SimError::WatchdogTripped`] if the run livelocks —
    /// more than [`LIVELOCK_SAME_INSTANT_CAP`] events fire at one
    /// simulated instant (a state machine re-arming a zero-length timer
    /// from its own handler), or the opt-in [`Network::set_watchdog`]
    /// event budget is exhausted. The network is left at the instant the
    /// guard tripped, so [`Network::report`] still works for post-mortems.
    pub fn run_until(&mut self, end: SimTime) -> Result<(), SimError> {
        loop {
            // Fire whichever of the queue head and the earliest pending
            // timer sorts first; `(time, key)` tuples from both sides share
            // one insertion-sequence space, so this interleaving is
            // identical to having queued the timers. The fused dispatch
            // resolves the race, drains cancelled heads, and advances the
            // queue's "now" in one descent instead of the peek-compare-pop
            // double traversal the loop used to do.
            let timer = self.peek_timer();
            match self.queue.pop_next(timer.map(|(t, k, _)| (t, k)), end) {
                NextFire::Queued(t, ev) => {
                    self.check_watchdog(t)?;
                    self.handle(ev)?;
                }
                NextFire::External(t) => {
                    let (_, _, slot) = timer.expect("external fire without a pending timer");
                    self.check_watchdog(t)?;
                    self.fire_timer(slot)?;
                }
                NextFire::Idle => break,
            }
            self.drain_effects()?;
        }
        Ok(())
    }

    /// Bump the event counters and fail if either guard trips.
    fn check_watchdog(&mut self, t: SimTime) -> Result<(), SimError> {
        self.events_processed += 1;
        if self.instant.0 == t {
            self.instant.1 += 1;
        } else {
            self.instant = (t, 1);
        }
        if self.instant.1 > LIVELOCK_SAME_INSTANT_CAP {
            return Err(SimError::WatchdogTripped {
                at: t,
                events: self.events_processed,
                diagnostic: format!(
                    "{} events fired without simulated time advancing past {t} \
                     (a state machine is re-arming a zero-delay timer); {}",
                    self.instant.1,
                    self.diagnostic_snapshot()
                ),
            });
        }
        if let Some(max) = self.watchdog {
            if self.events_processed > max {
                return Err(SimError::WatchdogTripped {
                    at: t,
                    events: self.events_processed,
                    diagnostic: format!(
                        "event budget of {max} exhausted; {}",
                        self.diagnostic_snapshot()
                    ),
                });
            }
        }
        Ok(())
    }

    /// One-line summary of live state for watchdog reports.
    fn diagnostic_snapshot(&self) -> String {
        let transmitting: Vec<&str> = self
            .stations
            .iter()
            .filter(|s| s.tx.is_some())
            .map(|s| s.name.as_str())
            .collect();
        let armed_mac = self.mac_timers.iter().filter(|&&t| t != NO_TIMER).count();
        let armed_tp = self.tp_timers.iter().filter(|&&t| t != NO_TIMER).count();
        format!(
            "in flight: {:?}, armed timers: {} MAC + {} transport, queue length: {}",
            transmitting,
            armed_mac,
            armed_tp,
            self.queue.len()
        )
    }

    /// The earliest pending timer across all stations and transport
    /// endpoints: the head of the decrease-key [`TimerIndex`], O(1) and
    /// always exact (every armed slot owns exactly one node).
    fn peek_timer(&self) -> Option<(SimTime, u64, u32)> {
        let head = self.timer_index.peek();
        match head {
            None => debug_assert!(
                self.scan_timers().0 == NO_TIMER,
                "timer index lost a pending timer"
            ),
            Some((t, k, slot)) => debug_assert!(
                ((t, k), slot) == self.scan_timers(),
                "timer index diverged from a full scan"
            ),
        }
        head
    }

    /// Debug oracle for [`Network::peek_timer`]: the full linear min scan
    /// the lazy heap replaced.
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    fn scan_timers(&self) -> (PendingTimer, u32) {
        let mut best = NO_TIMER;
        let mut slot = 0u32;
        for (i, &tk) in self.mac_timers.iter().enumerate() {
            if tk < best {
                best = tk;
                slot = i as u32;
            }
        }
        for (i, &tk) in self.tp_timers.iter().enumerate() {
            if tk < best {
                best = tk;
                slot = TP_SLOT | i as u32;
            }
        }
        (best, slot)
    }

    /// Fire the timer living in `slot` (a [`TimerIndex`] slot id): clear
    /// the slot, then dispatch to the owning MAC or transport endpoint.
    fn fire_timer(&mut self, slot: u32) -> Result<(), SimError> {
        if slot & TP_SLOT != 0 {
            let i = (slot & !TP_SLOT) as usize;
            self.tp_timers[i] = NO_TIMER;
            self.timer_index.note_write(slot, NO_TIMER);
            let side = if i.is_multiple_of(2) {
                Side::Sender
            } else {
                Side::Receiver
            };
            self.with_transport(i / 2, side, |tp, ctx| tp.on_timer(ctx));
            Ok(())
        } else {
            let station = slot as usize;
            self.mac_timers[station] = NO_TIMER;
            self.timer_index.note_write(slot, NO_TIMER);
            debug_assert!(
                self.stations[station].on,
                "powered-off stations have their timer cleared"
            );
            if let Some(t) = self.tracer.as_mut() {
                t(TraceEvent::MacTimer {
                    at: self.queue.now(),
                    station,
                });
            }
            self.with_mac(station, |mac, ctx| mac.on_timer(ctx))
        }
    }

    /// Total number of events processed since construction (the natural
    /// unit for engine throughput: events per wall-clock second).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Operation counters of the underlying future-event list, with the
    /// live-depth high-water mark replaced by the **sum of per-island
    /// high-water marks**. Islands never exchange events, so each island's
    /// mark is a pure function of its own trajectory and the sum is
    /// identical whether the islands share one event loop (serial run) or
    /// run one loop per shard — which is what lets the sharded engine
    /// reproduce this report field bitwise. For a single-island scenario
    /// the sum *is* the queue's own global mark.
    pub fn queue_stats(&self) -> QueueStats {
        let mut stats = self.queue.stats();
        stats.high_water = self.island_high.iter().sum();
        stats
    }

    fn handle(&mut self, ev: Event) -> Result<(), SimError> {
        let island = match ev {
            Event::TxEnd { station, .. } => self.island_of_station[station as usize],
            Event::AppArrival { stream } => self.island_of_stream[stream as usize],
            Event::Action { index } => self.island_of_action[index as usize],
        };
        self.island_live[island as usize] -= 1;
        match ev {
            Event::TxEnd { station, epoch } => self.handle_tx_end(station as usize, epoch),
            Event::AppArrival { stream } => {
                self.handle_app_arrival(stream as usize);
                Ok(())
            }
            Event::Action { index } => self.handle_action(self.actions[index as usize].kind),
        }
    }

    fn handle_tx_end(&mut self, station: usize, epoch: u32) -> Result<(), SimError> {
        if self.stations[station].epoch != epoch {
            // Stale event from a previous incarnation: the crash handler
            // already truncated this transmission on the air, and the
            // restarted station may have a fresh one in flight.
            return Ok(());
        }
        let (tx, frame) = self.stations[station]
            .tx
            .take()
            .expect("TxEnd without in-flight transmission");
        let now = self.queue.now();
        let mut deliveries = std::mem::take(&mut self.delivery_buf);
        self.medium.end_tx_into(tx, now, &mut deliveries);

        // Utilization accounting.
        if now >= self.warmup_end {
            let dur = self.timing.frame_duration(&frame).as_nanos();
            self.air_ns += dur;
            if frame.kind == macaw_mac::frames::FrameKind::Data {
                self.data_air_ns += dur;
            }
        }

        if let Some(t) = self.tracer.as_mut() {
            t(TraceEvent::Frame {
                at: now,
                frame,
                clean: deliveries
                    .iter()
                    .filter(|d| d.clean)
                    .map(|d| d.station.0)
                    .collect(),
                dirty: deliveries
                    .iter()
                    .filter(|d| !d.clean)
                    .map(|d| d.station.0)
                    .collect(),
            });
        }
        // Receivers first (reception completes as the carrier drops), then
        // the transmitter's own continuation.
        for d in &deliveries {
            let rx = d.station.0;
            if d.clean && self.stations[rx].on {
                if let Err(e) = self.with_mac(rx, |mac, ctx| mac.on_receive(ctx, &frame)) {
                    self.delivery_buf = deliveries;
                    return Err(e);
                }
            }
        }
        self.delivery_buf = deliveries;
        if self.stations[station].on {
            self.with_mac(station, |mac, ctx| mac.on_tx_end(ctx))?;
        }
        Ok(())
    }

    fn handle_app_arrival(&mut self, stream: usize) {
        let now = self.queue.now();
        let st = &mut self.streams[stream];
        if let Some(stop) = st.stop {
            if now > stop {
                return; // stream has ended; do not reschedule
            }
        }
        // Schedule the next arrival first (the generator never stops by
        // itself; `stop` gates it above).
        let gap = st.source.next_gap(&mut st.rng);
        let bytes = st.bytes;
        self.queue
            .schedule(now + gap, Event::AppArrival { stream: stream as u32 });
        note_island_schedule(
            &mut self.island_live,
            &mut self.island_high,
            self.island_of_stream[stream],
        );

        let st = &mut self.streams[stream];
        st.offered += 1;
        if now >= self.warmup_end {
            st.offered_measured += 1;
        }
        let src_on = self.stations[st.src].on;
        if src_on {
            self.with_transport(stream, Side::Sender, |tp, ctx| tp.on_app_send(ctx, bytes));
        }
    }

    fn handle_action(&mut self, kind: ActionKind) -> Result<(), SimError> {
        match kind {
            ActionKind::Move { station, to } => {
                self.medium.set_position(StationId(station), to);
            }
            ActionKind::MoveBatch { start, len } => {
                let s = start as usize;
                self.medium.set_positions(&self.moves[s..s + len as usize]);
            }
            ActionKind::PowerOff { station } => {
                self.stations[station].on = false;
                self.mac_timers[station] = NO_TIMER;
                self.timer_index.note_write(station as u32, NO_TIMER);
            }
            ActionKind::PowerOn { station } => {
                self.stations[station].on = true;
            }
            ActionKind::SetNoise { index, active } => {
                self.medium.set_noise_active(index, active);
            }
            ActionKind::Crash {
                station,
                preserve_queues,
            } => {
                let now = self.queue.now();
                let slot = &mut self.stations[station];
                slot.on = false;
                slot.epoch = slot.epoch.wrapping_add(1);
                if let Some((tx, _frame)) = slot.tx.take() {
                    // The carrier drops mid-frame: end the transmission on
                    // the medium (so other receptions see the interference
                    // stop) but discard the deliveries — nobody decodes a
                    // truncated burst. The queued TxEnd is now stale and
                    // the epoch bump above makes it a no-op.
                    let mut deliveries = std::mem::take(&mut self.delivery_buf);
                    self.medium.end_tx_into(tx, now, &mut deliveries);
                    deliveries.clear();
                    self.delivery_buf = deliveries;
                }
                self.mac_timers[station] = NO_TIMER;
                self.timer_index.note_write(station as u32, NO_TIMER);
                if let Some(mac) = self.stations[station].mac.as_mut() {
                    mac.reset(preserve_queues);
                }
            }
            ActionKind::Restart { station } => {
                if !self.stations[station].on {
                    self.stations[station].on = true;
                    // Kick the MAC once so packets preserved across the
                    // crash re-enter contention; a kick with nothing queued
                    // is a no-op for every protocol.
                    self.with_mac(station, |mac, ctx| mac.on_timer(ctx))?;
                }
            }
            ActionKind::SetLinkGain { src, dst, factor } => {
                self.medium
                    .set_link_gain(StationId(src), StationId(dst), factor);
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Borrow juggling: take the state machine out of its slot, build a
    // context from the remaining disjoint fields, call, put back.
    // ------------------------------------------------------------------

    fn with_mac(
        &mut self,
        station: usize,
        f: impl FnOnce(&mut dyn MacProtocol, &mut CoreMacCtx<M, Q::Fel<Event>>) -> MacResult,
    ) -> Result<(), SimError> {
        let mut mac = self.stations[station]
            .mac
            .take()
            .expect("MAC re-entered while borrowed");
        let now = self.queue.now();
        let result = {
            let slot = &mut self.stations[station];
            let mut ctx = CoreMacCtx {
                now,
                station,
                epoch: slot.epoch,
                island: self.island_of_station[station],
                timing: self.timing,
                queue: &mut self.queue,
                medium: &mut self.medium,
                rng: &mut slot.rng,
                mac_timer: &mut self.mac_timers[station],
                timer_index: &mut self.timer_index,
                tx: &mut slot.tx,
                island_live: &mut self.island_live,
                island_high: &mut self.island_high,
                effects: &mut self.effects,
            };
            f(mac.as_mut(), &mut ctx)
        };
        self.stations[station].mac = Some(mac);
        result.map_err(|violation| SimError::MacInvariant { at: now, violation })
    }

    fn with_transport(
        &mut self,
        stream: usize,
        side: Side,
        f: impl FnOnce(&mut dyn Transport, &mut CoreTransportCtx<Q::Fel<Event>>),
    ) {
        let now = self.queue.now();
        let st = &mut self.streams[stream];
        let mut tp = match side {
            Side::Sender => st.sender.take().expect("sender endpoint re-entered"),
            Side::Receiver => match &mut st.dst {
                StreamDst::Unicast { endpoint, .. } => {
                    endpoint.take().expect("receiver endpoint re-entered")
                }
                StreamDst::Multicast { .. } => {
                    panic!("multicast streams have no receiver endpoint")
                }
            },
        };
        {
            let mut ctx = CoreTransportCtx {
                now,
                queue: &mut self.queue,
                timer: &mut self.tp_timers[2 * stream + (side == Side::Receiver) as usize],
                timer_index: &mut self.timer_index,
                effects: &mut self.effects,
                stream,
                side,
            };
            f(tp.as_mut(), &mut ctx);
        }
        let st = &mut self.streams[stream];
        match side {
            Side::Sender => st.sender = Some(tp),
            Side::Receiver => {
                if let StreamDst::Unicast { endpoint, .. } = &mut st.dst {
                    *endpoint = Some(tp);
                }
            }
        }
    }

    fn drain_effects(&mut self) -> Result<(), SimError> {
        while let Some(e) = self.effects.pop_front() {
            match e {
                Effect::MacEnqueue { station, dst, sdu } => {
                    if self.stations[station].on {
                        self.with_mac(station, |mac, ctx| mac.enqueue(ctx, dst, sdu))?;
                    }
                }
                Effect::DeliverUp { station, sdu } => self.route_up(station, sdu),
                Effect::SendSegment { stream, side, seg } => {
                    let st = &self.streams[stream];
                    let (from_station, to_addr) = match side {
                        Side::Sender => match &st.dst {
                            StreamDst::Unicast { station, .. } => {
                                (st.src, Addr::Unicast(*station))
                            }
                            StreamDst::Multicast { group, .. } => {
                                (st.src, Addr::Multicast(*group))
                            }
                        },
                        Side::Receiver => match &st.dst {
                            StreamDst::Unicast { station, .. } => {
                                (*station, Addr::Unicast(st.src))
                            }
                            StreamDst::Multicast { .. } => {
                                unreachable!("multicast receivers do not send")
                            }
                        },
                    };
                    let (transport_seq, bytes) = seg.encode();
                    self.effects.push_back(Effect::MacEnqueue {
                        station: from_station,
                        dst: to_addr,
                        sdu: MacSdu {
                            stream: st.id,
                            transport_seq,
                            bytes,
                        },
                    });
                }
                Effect::AppDeliver { stream, bytes } => {
                    let now = self.queue.now();
                    let st = &mut self.streams[stream];
                    st.delivered += 1;
                    if now >= self.warmup_end {
                        st.delivered_measured += 1;
                        st.delivered_bytes_measured += bytes as u64;
                    }
                }
                Effect::Feedback { station, fb } => {
                    if let MacFeedback::Dropped {
                        stream,
                        transport_seq,
                    } = fb
                    {
                        self.stations[station].mac_drops += 1;
                        self.signal_drop(station, stream, transport_seq);
                    }
                }
            }
        }
        Ok(())
    }

    /// Tell the transport endpoint that owns a dropped segment about the
    /// link layer giving up on it (§4's "transport layer ... informed of
    /// the failure"). The MAC feedback carries the stream id and transport
    /// sequence number; the payload size is the stream's configured size.
    fn signal_drop(&mut self, station: usize, stream_id: StreamId, transport_seq: u64) {
        let stream = if let Some(&i) = self.stream_index.get(&stream_id.0) {
            i
        } else {
            debug_assert!(false, "drop feedback for unknown stream {stream_id:?}");
            return;
        };
        debug_assert_eq!(self.streams[stream].id, stream_id);
        let st = &self.streams[stream];
        let side = if station == st.src {
            Side::Sender
        } else {
            match &st.dst {
                StreamDst::Unicast {
                    station: dst_station,
                    ..
                } if *dst_station == station => Side::Receiver,
                // Multicast members have no endpoint; an SDU dropped by a
                // station that is neither endpoint would be a MAC bug.
                _ => return,
            }
        };
        let seg = Segment::decode(transport_seq, st.bytes);
        self.with_transport(stream, side, |tp, ctx| tp.on_segment_dropped(ctx, seg));
    }

    /// Route a MAC-delivered SDU to the right transport endpoint.
    fn route_up(&mut self, station: usize, sdu: MacSdu) {
        let stream = if let Some(&i) = self.stream_index.get(&sdu.stream.0) {
            i
        } else {
            debug_assert!(false, "SDU for unknown stream {:?}", sdu.stream);
            return;
        };
        debug_assert_eq!(self.streams[stream].id, sdu.stream);
        let seg = Segment::decode(sdu.transport_seq, sdu.bytes);
        enum Route {
            ToReceiver,
            ToSender,
            McastDeliver,
            Drop,
        }
        let route = {
            let st = &self.streams[stream];
            match &st.dst {
                StreamDst::Unicast {
                    station: dst_station,
                    ..
                } => {
                    if station == *dst_station {
                        Route::ToReceiver
                    } else if station == st.src {
                        Route::ToSender
                    } else {
                        // An SDU surfacing anywhere else would be a MAC bug;
                        // the MAC only delivers frames addressed to it.
                        Route::Drop
                    }
                }
                StreamDst::Multicast { members, .. } => {
                    if members.contains(&station) {
                        Route::McastDeliver
                    } else {
                        Route::Drop
                    }
                }
            }
        };
        match route {
            Route::ToReceiver => {
                self.with_transport(stream, Side::Receiver, |tp, ctx| tp.on_segment(ctx, seg));
            }
            Route::ToSender => {
                self.with_transport(stream, Side::Sender, |tp, ctx| tp.on_segment(ctx, seg));
            }
            Route::McastDeliver => {
                self.effects.push_back(Effect::AppDeliver {
                    stream,
                    bytes: sdu.bytes,
                });
            }
            Route::Drop => {}
        }
    }

    /// Produce the run report for `[warmup_end, end]`.
    pub fn report(&self, end: SimTime) -> RunReport {
        let measured = end.saturating_since(self.warmup_end).as_secs_f64();
        let streams = self
            .streams
            .iter()
            .map(|s| {
                let dst_name = match &s.dst {
                    StreamDst::Unicast { station, .. } => self.stations[*station].name.clone(),
                    StreamDst::Multicast { group, .. } => format!("mcast:{group}"),
                };
                StreamReport {
                    name: s.name.clone(),
                    src: self.stations[s.src].name.clone(),
                    dst: dst_name,
                    offered: s.offered_measured,
                    delivered: s.delivered_measured,
                    offered_pps: if measured > 0.0 {
                        s.offered_measured as f64 / measured
                    } else {
                        0.0
                    },
                    throughput_pps: if measured > 0.0 {
                        s.delivered_measured as f64 / measured
                    } else {
                        0.0
                    },
                    delivered_bytes: s.delivered_bytes_measured,
                }
            })
            .collect();
        let mac_stats = self
            .stations
            .iter()
            .map(|s| {
                s.mac
                    .as_ref()
                    .and_then(|m| m.mac_stats().copied())
            })
            .collect();
        RunReport {
            measured_secs: measured,
            streams,
            station_names: self.stations.iter().map(|s| s.name.clone()).collect(),
            mac_stats,
            mac_drops: self.stations.iter().map(|s| s.mac_drops).collect(),
            data_air_secs: self.data_air_ns as f64 / 1e9,
            total_air_secs: self.air_ns as f64 / 1e9,
            events_processed: self.events_processed,
            queue_stats: self.queue_stats(),
        }
    }

    /// Raw post-warm-up air-time totals `(data_ns, all_ns)`. The sharded
    /// runner sums these integers across shards *before* the one conversion
    /// to seconds, so the merged report's air fields are bitwise identical
    /// to the serial engine's single-accumulator result.
    pub(crate) fn air_totals_ns(&self) -> (u64, u64) {
        (self.data_air_ns, self.air_ns)
    }

    /// Number of stations.
    pub fn station_count(&self) -> usize {
        self.stations.len()
    }

    /// Number of declared streams.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// Immutable access to the radio medium (diagnostics / tests).
    pub fn medium(&self) -> &M {
        self.medium.inner()
    }
}

// ----------------------------------------------------------------------
// Context implementations
// ----------------------------------------------------------------------

/// Per-island mirror of the event queue's schedule-side accounting: bump
/// the island's live count and its high-water mark. The queue itself only
/// raises its high-water on schedule, so mirroring the same edge keeps the
/// two in lockstep (see [`Network::queue_stats`]).
#[inline]
fn note_island_schedule(live: &mut [usize], high: &mut [usize], island: u32) {
    let i = island as usize;
    live[i] += 1;
    if live[i] > high[i] {
        high[i] = live[i];
    }
}

struct CoreMacCtx<'a, M: Medium, F: Fel<Event>> {
    now: SimTime,
    station: usize,
    /// The station's current incarnation, stamped into scheduled TxEnds.
    epoch: u32,
    /// The station's island, for attributing scheduled TxEnds.
    island: u32,
    timing: Timing,
    queue: &'a mut EventQueue<Event, F>,
    medium: &'a mut ChaosMedium<M>,
    rng: &'a mut SimRng,
    mac_timer: &'a mut PendingTimer,
    timer_index: &'a mut TimerIndex,
    tx: &'a mut Option<(TxId, Frame)>,
    island_live: &'a mut [usize],
    island_high: &'a mut [usize],
    effects: &'a mut VecDeque<Effect>,
}

impl<M: Medium, F: Fel<Event>> MacContext for CoreMacCtx<'_, M, F> {
    fn now(&self) -> SimTime {
        self.now
    }

    // The timer never touches the event queue: re-arming overwrites the
    // station's single slot, and the sort key (drawn from the queue's
    // insertion counter) keeps the fire order identical to a queued event's.

    fn set_timer(&mut self, delay: SimDuration) {
        *self.mac_timer = (self.now + delay, self.queue.alloc_key(PRIO_TIMER));
        self.timer_index
            .note_write(self.station as u32, *self.mac_timer);
    }

    fn clear_timer(&mut self) {
        *self.mac_timer = NO_TIMER;
        self.timer_index.note_write(self.station as u32, NO_TIMER);
    }

    fn transmit(&mut self, frame: Frame) {
        assert!(self.tx.is_none(), "station already transmitting");
        let dur = self.timing.frame_duration(&frame);
        let tx = self.medium.start_tx(StationId(self.station), self.now);
        self.queue.schedule_with_priority(
            self.now + dur,
            PRIO_TX_END,
            Event::TxEnd {
                station: self.station as u32,
                epoch: self.epoch,
            },
        );
        note_island_schedule(self.island_live, self.island_high, self.island);
        *self.tx = Some((tx, frame));
    }

    fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    fn carrier_busy(&self) -> bool {
        self.medium.carrier_busy(StationId(self.station))
    }

    fn deliver_up(&mut self, _src: Addr, sdu: MacSdu) {
        self.effects.push_back(Effect::DeliverUp {
            station: self.station,
            sdu,
        });
    }

    fn feedback(&mut self, event: MacFeedback) {
        self.effects.push_back(Effect::Feedback {
            station: self.station,
            fb: event,
        });
    }
}

struct CoreTransportCtx<'a, F: Fel<Event>> {
    now: SimTime,
    queue: &'a mut EventQueue<Event, F>,
    timer: &'a mut PendingTimer,
    timer_index: &'a mut TimerIndex,
    effects: &'a mut VecDeque<Effect>,
    stream: usize,
    side: Side,
}

impl<F: Fel<Event>> TransportContext for CoreTransportCtx<'_, F> {
    fn now(&self) -> SimTime {
        self.now
    }

    // As for MAC timers: the single pending timer lives in the endpoint's
    // slot, not the event queue.

    fn set_timer(&mut self, delay: SimDuration) {
        *self.timer = (self.now + delay, self.queue.alloc_key(PRIO_TIMER));
        let slot = TP_SLOT | (2 * self.stream + (self.side == Side::Receiver) as usize) as u32;
        self.timer_index.note_write(slot, *self.timer);
    }

    fn clear_timer(&mut self) {
        *self.timer = NO_TIMER;
        let slot = TP_SLOT | (2 * self.stream + (self.side == Side::Receiver) as usize) as u32;
        self.timer_index.note_write(slot, NO_TIMER);
    }

    fn send_segment(&mut self, seg: Segment) {
        self.effects.push_back(Effect::SendSegment {
            stream: self.stream,
            side: self.side,
            seg,
        });
    }

    fn deliver_app(&mut self, _seq: u64, bytes: u32) {
        self.effects.push_back(Effect::AppDeliver {
            stream: self.stream,
            bytes,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{MacKind, Scenario};
    use macaw_phy::Point;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn one_cell() -> Scenario {
        let mut sc = Scenario::new(4);
        let b = sc.add_station("B", Point::new(0.0, 0.0, 6.0), MacKind::Macaw);
        let p = sc.add_station("P", Point::new(3.0, 0.0, 0.0), MacKind::Macaw);
        sc.add_udp_stream("P-B", p, b, 16, 512);
        sc
    }

    #[test]
    fn tracer_sees_the_full_exchange() {
        let mut net = one_cell().build().unwrap();
        let kinds = Rc::new(RefCell::new(Vec::new()));
        let sink = kinds.clone();
        net.set_tracer(Box::new(move |e| {
            if let TraceEvent::Frame { frame, clean, .. } = e {
                sink.borrow_mut().push((frame.kind, clean.len()));
            }
        }));
        net.run_until(SimTime::ZERO + SimDuration::from_secs(1)).unwrap();
        let kinds = kinds.borrow();
        use macaw_mac::frames::FrameKind::*;
        for want in [Rts, Cts, Ds, Data, Ack] {
            assert!(
                kinds.iter().any(|(k, n)| *k == want && *n == 1),
                "expected a cleanly received {want:?} in the trace"
            );
        }
        // MACAW order within the first exchange.
        let seq: Vec<_> = kinds.iter().map(|(k, _)| *k).take(5).collect();
        assert_eq!(seq, vec![Rts, Cts, Ds, Data, Ack]);
    }

    #[test]
    fn utilization_accounting_tracks_air_time() {
        let mut net = one_cell().build().unwrap();
        net.set_warmup(SimTime::ZERO);
        let end = SimTime::ZERO + SimDuration::from_secs(10);
        net.run_until(end).unwrap();
        let r = net.report(end);
        // 16 pps of 16 ms data packets ≈ 25.6% data utilization.
        assert!(
            (r.data_utilization() - 0.256).abs() < 0.03,
            "data utilization = {}",
            r.data_utilization()
        );
        assert!(r.total_air_secs > r.data_air_secs, "control frames count too");
    }

    #[test]
    fn report_names_match_scenario() {
        let mut net = one_cell().build().unwrap();
        let end = SimTime::ZERO + SimDuration::from_secs(1);
        net.run_until(end).unwrap();
        let r = net.report(end);
        assert_eq!(r.station_names, vec!["B".to_string(), "P".to_string()]);
        assert_eq!(r.streams[0].name, "P-B");
        assert_eq!(r.streams[0].src, "P");
        assert_eq!(r.streams[0].dst, "B");
    }

    #[test]
    fn report_before_warmup_window_is_empty() {
        let mut net = one_cell().build().unwrap();
        net.set_warmup(SimTime::ZERO + SimDuration::from_secs(100));
        let end = SimTime::ZERO + SimDuration::from_secs(10);
        net.run_until(end).unwrap();
        let r = net.report(end);
        assert_eq!(r.streams[0].delivered, 0);
        assert_eq!(r.measured_secs, 0.0);
        assert_eq!(r.streams[0].throughput_pps, 0.0, "no division by zero");
    }

    #[test]
    fn mac_stats_surface_through_the_report() {
        let mut net = one_cell().build().unwrap();
        let end = SimTime::ZERO + SimDuration::from_secs(5);
        net.run_until(end).unwrap();
        let r = net.report(end);
        let pad = r.mac_stats[1].expect("WMac exposes stats");
        assert!(pad.rts_sent > 0);
        assert!(pad.data_sent > 0);
        let base = r.mac_stats[0].expect("base stats");
        assert!(base.cts_sent > 0 && base.ack_sent > 0);
    }

    #[test]
    fn watchdog_event_budget_trips_with_a_diagnostic() {
        let mut net = one_cell().build().unwrap();
        net.set_watchdog(50);
        let err = net
            .run_until(SimTime::ZERO + SimDuration::from_secs(60))
            .unwrap_err();
        match err {
            crate::error::SimError::WatchdogTripped { events, diagnostic, .. } => {
                assert!(events > 50);
                assert!(
                    diagnostic.contains("event budget"),
                    "diagnostic should name the tripped budget: {diagnostic}"
                );
            }
            other => panic!("expected WatchdogTripped, got {other:?}"),
        }
    }

    #[test]
    fn watchdog_budget_is_a_total_not_a_rate() {
        // A generous budget must let a healthy run finish untouched.
        let mut net = one_cell().build().unwrap();
        net.set_watchdog(10_000_000);
        net.run_until(SimTime::ZERO + SimDuration::from_secs(5)).unwrap();
        let r = net.report(SimTime::ZERO + SimDuration::from_secs(5));
        assert!(r.streams[0].delivered > 0, "run should complete normally");
    }
}
