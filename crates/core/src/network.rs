//! The simulated network: radio medium + MAC state machines + transports +
//! traffic generators, driven by one deterministic event loop.
//!
//! # Event model
//!
//! Four event families flow through a single totally-ordered queue:
//! end-of-transmission (frame delivery), MAC timers, transport timers, and
//! application packet arrivals, plus scheduled scenario actions (mobility,
//! power, noise). End-of-transmission events carry a lower same-instant
//! priority value than timers, so a station whose contention slot lands
//! exactly where an overheard frame ends processes the frame — and defers —
//! before its own timer would let it transmit.
//!
//! # Re-entrancy
//!
//! A received DATA packet can make a TCP receiver emit an ACK segment,
//! which re-enters the very MAC that is currently borrowed. All such
//! upcalls are therefore buffered as `Effect`s and drained iteratively
//! after each event handler returns; nothing ever re-enters a borrowed
//! state machine.

use std::collections::VecDeque;

use macaw_mac::context::{MacContext, MacFeedback, MacProtocol};
use macaw_mac::frames::{Addr, Frame, MacSdu, StreamId, Timing};
use macaw_phy::{Medium, Point, StationId, TxId};
use macaw_sim::{EventId, EventQueue, SimDuration, SimRng, SimTime};
use macaw_traffic::TrafficSource;
use macaw_transport::{Segment, Transport, TransportContext};

use crate::stats::{RunReport, StreamReport};

/// A trace record emitted by [`Network::set_tracer`] hooks. Useful for
/// debugging protocol dynamics and for building packet logs.
#[derive(Clone, Debug)]
pub enum TraceEvent {
    /// A frame finished transmitting; `clean` lists stations that received
    /// it intact, `dirty` those that heard garbage.
    Frame {
        at: SimTime,
        frame: Frame,
        clean: Vec<usize>,
        dirty: Vec<usize>,
    },
    /// A MAC timer fired at a station.
    MacTimer { at: SimTime, station: usize },
}

/// Same-instant priority for end-of-transmission (frame delivery) events.
const PRIO_TX_END: u8 = 0;
/// Same-instant priority for every kind of timer.
const PRIO_TIMER: u8 = 128;

/// Which endpoint of a stream.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Side {
    Sender,
    Receiver,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Event {
    /// A station's transmission ends; deliver to everyone in range.
    TxEnd { station: usize },
    /// A MAC timer fires (stale generations are ignored).
    MacTimer { station: usize, gen: u64 },
    /// A transport endpoint timer fires.
    TransportTimer { stream: usize, side: Side, gen: u64 },
    /// The application on a stream produces its next packet.
    AppArrival { stream: usize },
    /// A scheduled scenario action (mobility / power / noise) fires.
    Action { index: usize },
}

/// Deferred upcalls, drained after each event handler returns.
enum Effect {
    MacEnqueue {
        station: usize,
        dst: Addr,
        sdu: MacSdu,
    },
    DeliverUp {
        station: usize,
        sdu: MacSdu,
    },
    SendSegment {
        stream: usize,
        side: Side,
        seg: Segment,
    },
    AppDeliver {
        stream: usize,
        bytes: u32,
    },
    Feedback {
        station: usize,
        fb: MacFeedback,
    },
}

/// Scheduled scenario actions.
#[derive(Clone, Copy, Debug)]
pub(crate) enum ActionKind {
    /// Move a station (mobility).
    Move { station: usize, to: Point },
    /// Power a station off (the Figure-9 "pad is turned off").
    PowerOff { station: usize },
    /// Power a station back on.
    PowerOn { station: usize },
    /// Toggle a spatial noise emitter.
    SetNoise { index: usize, active: bool },
}

pub(crate) struct ScheduledAction {
    pub at: SimTime,
    pub kind: ActionKind,
}

struct StationSlot {
    name: String,
    mac: Option<Box<dyn MacProtocol>>,
    rng: SimRng,
    mac_timer: Option<EventId>,
    mac_timer_gen: u64,
    /// The in-flight own transmission, if any.
    tx: Option<(TxId, Frame)>,
    on: bool,
    /// Packets dropped by this station's MAC after retry exhaustion.
    mac_drops: u64,
}

/// Where the packets of a stream go.
enum StreamDst {
    /// A single receiving station with a transport endpoint.
    Unicast {
        station: usize,
        endpoint: Option<Box<dyn Transport>>,
        timer: Option<EventId>,
        timer_gen: u64,
    },
    /// A multicast group (§3.3.4): members just count deliveries.
    Multicast { group: u32, members: Vec<usize> },
}

struct StreamState {
    name: String,
    id: StreamId,
    src: usize,
    dst: StreamDst,
    bytes: u32,
    source: Box<dyn TrafficSource>,
    rng: SimRng,
    start: SimTime,
    stop: Option<SimTime>,
    sender: Option<Box<dyn Transport>>,
    sender_timer: Option<EventId>,
    sender_timer_gen: u64,
    offered: u64,
    delivered: u64,
    offered_measured: u64,
    delivered_measured: u64,
    delivered_bytes_measured: u64,
}

/// The assembled simulated network. Build one through
/// [`crate::scenario::Scenario`].
pub struct Network {
    pub(crate) medium: Medium,
    queue: EventQueue<Event>,
    timing: Timing,
    stations: Vec<StationSlot>,
    streams: Vec<StreamState>,
    actions: Vec<ScheduledAction>,
    effects: VecDeque<Effect>,
    warmup_end: SimTime,
    /// Total on-air time of DATA frames after warm-up (utilization).
    data_air_ns: u64,
    /// Total on-air time of all frames after warm-up.
    air_ns: u64,
    tracer: Option<Box<dyn FnMut(TraceEvent)>>,
}

impl Network {
    pub(crate) fn new(medium: Medium, timing: Timing) -> Self {
        Network {
            medium,
            queue: EventQueue::new(),
            timing,
            stations: Vec::new(),
            streams: Vec::new(),
            actions: Vec::new(),
            effects: VecDeque::new(),
            warmup_end: SimTime::ZERO,
            data_air_ns: 0,
            air_ns: 0,
            tracer: None,
        }
    }

    /// Install a tracer receiving a [`TraceEvent`] per frame and MAC timer.
    pub fn set_tracer(&mut self, tracer: Box<dyn FnMut(TraceEvent)>) {
        self.tracer = Some(tracer);
    }

    pub(crate) fn add_station(
        &mut self,
        name: String,
        mac: Box<dyn MacProtocol>,
        rng: SimRng,
    ) -> usize {
        self.stations.push(StationSlot {
            name,
            mac: Some(mac),
            rng,
            mac_timer: None,
            mac_timer_gen: 0,
            tx: None,
            on: true,
            mac_drops: 0,
        });
        self.stations.len() - 1
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn add_unicast_stream(
        &mut self,
        name: String,
        id: StreamId,
        src: usize,
        dst: usize,
        bytes: u32,
        source: Box<dyn TrafficSource>,
        rng: SimRng,
        start: SimTime,
        stop: Option<SimTime>,
        sender: Box<dyn Transport>,
        receiver: Box<dyn Transport>,
    ) -> usize {
        self.streams.push(StreamState {
            name,
            id,
            src,
            dst: StreamDst::Unicast {
                station: dst,
                endpoint: Some(receiver),
                timer: None,
                timer_gen: 0,
            },
            bytes,
            source,
            rng,
            start,
            stop,
            sender: Some(sender),
            sender_timer: None,
            sender_timer_gen: 0,
            offered: 0,
            delivered: 0,
            offered_measured: 0,
            delivered_measured: 0,
            delivered_bytes_measured: 0,
        });
        self.streams.len() - 1
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn add_multicast_stream(
        &mut self,
        name: String,
        id: StreamId,
        src: usize,
        group: u32,
        members: Vec<usize>,
        bytes: u32,
        source: Box<dyn TrafficSource>,
        rng: SimRng,
        start: SimTime,
        stop: Option<SimTime>,
        sender: Box<dyn Transport>,
    ) -> usize {
        self.streams.push(StreamState {
            name,
            id,
            src,
            dst: StreamDst::Multicast { group, members },
            bytes,
            source,
            rng,
            start,
            stop,
            sender: Some(sender),
            sender_timer: None,
            sender_timer_gen: 0,
            offered: 0,
            delivered: 0,
            offered_measured: 0,
            delivered_measured: 0,
            delivered_bytes_measured: 0,
        });
        self.streams.len() - 1
    }

    pub(crate) fn schedule_action(&mut self, action: ScheduledAction) {
        self.actions.push(action);
    }

    /// Prime first arrivals and scheduled actions. Called once before
    /// running.
    pub(crate) fn prime(&mut self) {
        for i in 0..self.streams.len() {
            let st = &mut self.streams[i];
            // Random initial phase so same-rate CBR streams are not
            // pathologically synchronized (the paper's generators are
            // independent devices).
            let gap = st.source.next_gap(&mut st.rng);
            let phase =
                SimDuration::from_nanos(st.rng.uniform_inclusive(0, gap.as_nanos().max(1) - 1));
            self.queue
                .schedule(st.start + phase, Event::AppArrival { stream: i });
        }
        for (i, a) in self.actions.iter().enumerate() {
            self.queue.schedule(a.at, Event::Action { index: i });
        }
    }

    /// Set the end of the statistics warm-up window.
    pub(crate) fn set_warmup(&mut self, end: SimTime) {
        self.warmup_end = end;
    }

    /// Current simulated time (time of the event being/last handled).
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Run until `end`, then stop (events beyond `end` stay queued).
    pub fn run_until(&mut self, end: SimTime) {
        while let Some(t) = self.queue.peek_time() {
            if t > end {
                break;
            }
            let (_, ev) = self.queue.pop().expect("peeked event vanished");
            self.handle(ev);
            self.drain_effects();
        }
    }

    fn handle(&mut self, ev: Event) {
        match ev {
            Event::TxEnd { station } => self.handle_tx_end(station),
            Event::MacTimer { station, gen } => {
                if self.stations[station].mac_timer_gen != gen {
                    return; // stale
                }
                self.stations[station].mac_timer = None;
                if !self.stations[station].on {
                    return;
                }
                if let Some(t) = self.tracer.as_mut() {
                    t(TraceEvent::MacTimer {
                        at: self.queue.now(),
                        station,
                    });
                }
                self.with_mac(station, |mac, ctx| mac.on_timer(ctx));
            }
            Event::TransportTimer { stream, side, gen } => {
                let current = match side {
                    Side::Sender => self.streams[stream].sender_timer_gen,
                    Side::Receiver => match &self.streams[stream].dst {
                        StreamDst::Unicast { timer_gen, .. } => *timer_gen,
                        StreamDst::Multicast { .. } => return,
                    },
                };
                if current != gen {
                    return; // stale
                }
                self.with_transport(stream, side, |tp, ctx| tp.on_timer(ctx));
            }
            Event::AppArrival { stream } => self.handle_app_arrival(stream),
            Event::Action { index } => self.handle_action(self.actions[index].kind),
        }
    }

    fn handle_tx_end(&mut self, station: usize) {
        let (tx, frame) = self.stations[station]
            .tx
            .take()
            .expect("TxEnd without in-flight transmission");
        let now = self.queue.now();
        let deliveries = self.medium.end_tx(tx, now);

        // Utilization accounting.
        if now >= self.warmup_end {
            let dur = self.timing.frame_duration(&frame).as_nanos();
            self.air_ns += dur;
            if frame.kind == macaw_mac::frames::FrameKind::Data {
                self.data_air_ns += dur;
            }
        }

        if let Some(t) = self.tracer.as_mut() {
            t(TraceEvent::Frame {
                at: now,
                frame,
                clean: deliveries
                    .iter()
                    .filter(|d| d.clean)
                    .map(|d| d.station.0)
                    .collect(),
                dirty: deliveries
                    .iter()
                    .filter(|d| !d.clean)
                    .map(|d| d.station.0)
                    .collect(),
            });
        }
        // Receivers first (reception completes as the carrier drops), then
        // the transmitter's own continuation.
        for d in deliveries {
            let rx = d.station.0;
            if d.clean && self.stations[rx].on {
                self.with_mac(rx, |mac, ctx| mac.on_receive(ctx, &frame));
            }
        }
        if self.stations[station].on {
            self.with_mac(station, |mac, ctx| mac.on_tx_end(ctx));
        }
    }

    fn handle_app_arrival(&mut self, stream: usize) {
        let now = self.queue.now();
        let st = &mut self.streams[stream];
        if let Some(stop) = st.stop {
            if now > stop {
                return; // stream has ended; do not reschedule
            }
        }
        // Schedule the next arrival first (the generator never stops by
        // itself; `stop` gates it above).
        let gap = st.source.next_gap(&mut st.rng);
        let bytes = st.bytes;
        self.queue.schedule(now + gap, Event::AppArrival { stream });

        let st = &mut self.streams[stream];
        st.offered += 1;
        if now >= self.warmup_end {
            st.offered_measured += 1;
        }
        let src_on = self.stations[st.src].on;
        if src_on {
            self.with_transport(stream, Side::Sender, |tp, ctx| tp.on_app_send(ctx, bytes));
        }
    }

    fn handle_action(&mut self, kind: ActionKind) {
        match kind {
            ActionKind::Move { station, to } => {
                self.medium.set_position(StationId(station), to);
            }
            ActionKind::PowerOff { station } => {
                let slot = &mut self.stations[station];
                slot.on = false;
                if let Some(_id) = slot.mac_timer.take() {
                    slot.mac_timer_gen += 1;
                }
            }
            ActionKind::PowerOn { station } => {
                self.stations[station].on = true;
            }
            ActionKind::SetNoise { index, active } => {
                self.medium.set_noise_active(index, active);
            }
        }
    }

    // ------------------------------------------------------------------
    // Borrow juggling: take the state machine out of its slot, build a
    // context from the remaining disjoint fields, call, put back.
    // ------------------------------------------------------------------

    fn with_mac(&mut self, station: usize, f: impl FnOnce(&mut dyn MacProtocol, &mut CoreMacCtx)) {
        let mut mac = self.stations[station]
            .mac
            .take()
            .expect("MAC re-entered while borrowed");
        let now = self.queue.now();
        {
            let slot = &mut self.stations[station];
            let mut ctx = CoreMacCtx {
                now,
                station,
                timing: self.timing,
                queue: &mut self.queue,
                medium: &mut self.medium,
                rng: &mut slot.rng,
                mac_timer: &mut slot.mac_timer,
                mac_timer_gen: &mut slot.mac_timer_gen,
                tx: &mut slot.tx,
                effects: &mut self.effects,
            };
            f(mac.as_mut(), &mut ctx);
        }
        self.stations[station].mac = Some(mac);
    }

    fn with_transport(
        &mut self,
        stream: usize,
        side: Side,
        f: impl FnOnce(&mut dyn Transport, &mut CoreTransportCtx),
    ) {
        let now = self.queue.now();
        let st = &mut self.streams[stream];
        let (mut tp, timer, gen) = match side {
            Side::Sender => (
                st.sender.take().expect("sender endpoint re-entered"),
                &mut st.sender_timer,
                &mut st.sender_timer_gen,
            ),
            Side::Receiver => match &mut st.dst {
                StreamDst::Unicast {
                    endpoint,
                    timer,
                    timer_gen,
                    ..
                } => (
                    endpoint.take().expect("receiver endpoint re-entered"),
                    timer,
                    timer_gen,
                ),
                StreamDst::Multicast { .. } => {
                    panic!("multicast streams have no receiver endpoint")
                }
            },
        };
        {
            let mut ctx = CoreTransportCtx {
                now,
                stream,
                side,
                queue: &mut self.queue,
                timer,
                timer_gen: gen,
                effects: &mut self.effects,
            };
            f(tp.as_mut(), &mut ctx);
        }
        let st = &mut self.streams[stream];
        match side {
            Side::Sender => st.sender = Some(tp),
            Side::Receiver => {
                if let StreamDst::Unicast { endpoint, .. } = &mut st.dst {
                    *endpoint = Some(tp);
                }
            }
        }
    }

    fn drain_effects(&mut self) {
        while let Some(e) = self.effects.pop_front() {
            match e {
                Effect::MacEnqueue { station, dst, sdu } => {
                    if self.stations[station].on {
                        self.with_mac(station, |mac, ctx| mac.enqueue(ctx, dst, sdu));
                    }
                }
                Effect::DeliverUp { station, sdu } => self.route_up(station, sdu),
                Effect::SendSegment { stream, side, seg } => {
                    let st = &self.streams[stream];
                    let (from_station, to_addr) = match side {
                        Side::Sender => match &st.dst {
                            StreamDst::Unicast { station, .. } => {
                                (st.src, Addr::Unicast(*station))
                            }
                            StreamDst::Multicast { group, .. } => {
                                (st.src, Addr::Multicast(*group))
                            }
                        },
                        Side::Receiver => match &st.dst {
                            StreamDst::Unicast { station, .. } => {
                                (*station, Addr::Unicast(st.src))
                            }
                            StreamDst::Multicast { .. } => {
                                unreachable!("multicast receivers do not send")
                            }
                        },
                    };
                    let (transport_seq, bytes) = seg.encode();
                    self.effects.push_back(Effect::MacEnqueue {
                        station: from_station,
                        dst: to_addr,
                        sdu: MacSdu {
                            stream: st.id,
                            transport_seq,
                            bytes,
                        },
                    });
                }
                Effect::AppDeliver { stream, bytes } => {
                    let now = self.queue.now();
                    let st = &mut self.streams[stream];
                    st.delivered += 1;
                    if now >= self.warmup_end {
                        st.delivered_measured += 1;
                        st.delivered_bytes_measured += bytes as u64;
                    }
                }
                Effect::Feedback { station, fb } => {
                    if let MacFeedback::Dropped { .. } = fb {
                        self.stations[station].mac_drops += 1;
                    }
                }
            }
        }
    }

    /// Route a MAC-delivered SDU to the right transport endpoint.
    fn route_up(&mut self, station: usize, sdu: MacSdu) {
        let Some(stream) = self.streams.iter().position(|s| s.id == sdu.stream) else {
            debug_assert!(false, "SDU for unknown stream {:?}", sdu.stream);
            return;
        };
        let seg = Segment::decode(sdu.transport_seq, sdu.bytes);
        enum Route {
            ToReceiver,
            ToSender,
            McastDeliver,
            Drop,
        }
        let route = {
            let st = &self.streams[stream];
            match &st.dst {
                StreamDst::Unicast {
                    station: dst_station,
                    ..
                } => {
                    if station == *dst_station {
                        Route::ToReceiver
                    } else if station == st.src {
                        Route::ToSender
                    } else {
                        // An SDU surfacing anywhere else would be a MAC bug;
                        // the MAC only delivers frames addressed to it.
                        Route::Drop
                    }
                }
                StreamDst::Multicast { members, .. } => {
                    if members.contains(&station) {
                        Route::McastDeliver
                    } else {
                        Route::Drop
                    }
                }
            }
        };
        match route {
            Route::ToReceiver => {
                self.with_transport(stream, Side::Receiver, |tp, ctx| tp.on_segment(ctx, seg));
            }
            Route::ToSender => {
                self.with_transport(stream, Side::Sender, |tp, ctx| tp.on_segment(ctx, seg));
            }
            Route::McastDeliver => {
                self.effects.push_back(Effect::AppDeliver {
                    stream,
                    bytes: sdu.bytes,
                });
            }
            Route::Drop => {}
        }
    }

    /// Produce the run report for `[warmup_end, end]`.
    pub fn report(&self, end: SimTime) -> RunReport {
        let measured = end.saturating_since(self.warmup_end).as_secs_f64();
        let streams = self
            .streams
            .iter()
            .map(|s| {
                let dst_name = match &s.dst {
                    StreamDst::Unicast { station, .. } => self.stations[*station].name.clone(),
                    StreamDst::Multicast { group, .. } => format!("mcast:{group}"),
                };
                StreamReport {
                    name: s.name.clone(),
                    src: self.stations[s.src].name.clone(),
                    dst: dst_name,
                    offered: s.offered_measured,
                    delivered: s.delivered_measured,
                    offered_pps: if measured > 0.0 {
                        s.offered_measured as f64 / measured
                    } else {
                        0.0
                    },
                    throughput_pps: if measured > 0.0 {
                        s.delivered_measured as f64 / measured
                    } else {
                        0.0
                    },
                    delivered_bytes: s.delivered_bytes_measured,
                }
            })
            .collect();
        let mac_stats = self
            .stations
            .iter()
            .map(|s| {
                s.mac
                    .as_ref()
                    .and_then(|m| m.mac_stats().copied())
            })
            .collect();
        RunReport {
            measured_secs: measured,
            streams,
            station_names: self.stations.iter().map(|s| s.name.clone()).collect(),
            mac_stats,
            data_air_secs: self.data_air_ns as f64 / 1e9,
            total_air_secs: self.air_ns as f64 / 1e9,
        }
    }

    /// Number of stations.
    pub fn station_count(&self) -> usize {
        self.stations.len()
    }

    /// Immutable access to the radio medium (diagnostics / tests).
    pub fn medium(&self) -> &Medium {
        &self.medium
    }
}

// ----------------------------------------------------------------------
// Context implementations
// ----------------------------------------------------------------------

struct CoreMacCtx<'a> {
    now: SimTime,
    station: usize,
    timing: Timing,
    queue: &'a mut EventQueue<Event>,
    medium: &'a mut Medium,
    rng: &'a mut SimRng,
    mac_timer: &'a mut Option<EventId>,
    mac_timer_gen: &'a mut u64,
    tx: &'a mut Option<(TxId, Frame)>,
    effects: &'a mut VecDeque<Effect>,
}

impl MacContext for CoreMacCtx<'_> {
    fn now(&self) -> SimTime {
        self.now
    }

    fn set_timer(&mut self, delay: SimDuration) {
        if let Some(id) = self.mac_timer.take() {
            self.queue.cancel(id);
        }
        *self.mac_timer_gen += 1;
        let id = self.queue.schedule_with_priority(
            self.now + delay,
            PRIO_TIMER,
            Event::MacTimer {
                station: self.station,
                gen: *self.mac_timer_gen,
            },
        );
        *self.mac_timer = Some(id);
    }

    fn clear_timer(&mut self) {
        if let Some(id) = self.mac_timer.take() {
            self.queue.cancel(id);
        }
        *self.mac_timer_gen += 1;
    }

    fn transmit(&mut self, frame: Frame) {
        assert!(self.tx.is_none(), "station already transmitting");
        let dur = self.timing.frame_duration(&frame);
        let tx = self.medium.start_tx(StationId(self.station), self.now);
        self.queue.schedule_with_priority(
            self.now + dur,
            PRIO_TX_END,
            Event::TxEnd {
                station: self.station,
            },
        );
        *self.tx = Some((tx, frame));
    }

    fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    fn carrier_busy(&self) -> bool {
        self.medium.carrier_busy(StationId(self.station))
    }

    fn deliver_up(&mut self, _src: Addr, sdu: MacSdu) {
        self.effects.push_back(Effect::DeliverUp {
            station: self.station,
            sdu,
        });
    }

    fn feedback(&mut self, event: MacFeedback) {
        self.effects.push_back(Effect::Feedback {
            station: self.station,
            fb: event,
        });
    }
}

struct CoreTransportCtx<'a> {
    now: SimTime,
    stream: usize,
    side: Side,
    queue: &'a mut EventQueue<Event>,
    timer: &'a mut Option<EventId>,
    timer_gen: &'a mut u64,
    effects: &'a mut VecDeque<Effect>,
}

impl TransportContext for CoreTransportCtx<'_> {
    fn now(&self) -> SimTime {
        self.now
    }

    fn set_timer(&mut self, delay: SimDuration) {
        if let Some(id) = self.timer.take() {
            self.queue.cancel(id);
        }
        *self.timer_gen += 1;
        let id = self.queue.schedule_with_priority(
            self.now + delay,
            PRIO_TIMER,
            Event::TransportTimer {
                stream: self.stream,
                side: self.side,
                gen: *self.timer_gen,
            },
        );
        *self.timer = Some(id);
    }

    fn clear_timer(&mut self) {
        if let Some(id) = self.timer.take() {
            self.queue.cancel(id);
        }
        *self.timer_gen += 1;
    }

    fn send_segment(&mut self, seg: Segment) {
        self.effects.push_back(Effect::SendSegment {
            stream: self.stream,
            side: self.side,
            seg,
        });
    }

    fn deliver_app(&mut self, _seq: u64, bytes: u32) {
        self.effects.push_back(Effect::AppDeliver {
            stream: self.stream,
            bytes,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{MacKind, Scenario};
    use macaw_phy::Point;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn one_cell() -> Scenario {
        let mut sc = Scenario::new(4);
        let b = sc.add_station("B", Point::new(0.0, 0.0, 6.0), MacKind::Macaw);
        let p = sc.add_station("P", Point::new(3.0, 0.0, 0.0), MacKind::Macaw);
        sc.add_udp_stream("P-B", p, b, 16, 512);
        sc
    }

    #[test]
    fn tracer_sees_the_full_exchange() {
        let mut net = one_cell().build();
        let kinds = Rc::new(RefCell::new(Vec::new()));
        let sink = kinds.clone();
        net.set_tracer(Box::new(move |e| {
            if let TraceEvent::Frame { frame, clean, .. } = e {
                sink.borrow_mut().push((frame.kind, clean.len()));
            }
        }));
        net.run_until(SimTime::ZERO + SimDuration::from_secs(1));
        let kinds = kinds.borrow();
        use macaw_mac::frames::FrameKind::*;
        for want in [Rts, Cts, Ds, Data, Ack] {
            assert!(
                kinds.iter().any(|(k, n)| *k == want && *n == 1),
                "expected a cleanly received {want:?} in the trace"
            );
        }
        // MACAW order within the first exchange.
        let seq: Vec<_> = kinds.iter().map(|(k, _)| *k).take(5).collect();
        assert_eq!(seq, vec![Rts, Cts, Ds, Data, Ack]);
    }

    #[test]
    fn utilization_accounting_tracks_air_time() {
        let mut net = one_cell().build();
        net.set_warmup(SimTime::ZERO);
        let end = SimTime::ZERO + SimDuration::from_secs(10);
        net.run_until(end);
        let r = net.report(end);
        // 16 pps of 16 ms data packets ≈ 25.6% data utilization.
        assert!(
            (r.data_utilization() - 0.256).abs() < 0.03,
            "data utilization = {}",
            r.data_utilization()
        );
        assert!(r.total_air_secs > r.data_air_secs, "control frames count too");
    }

    #[test]
    fn report_names_match_scenario() {
        let mut net = one_cell().build();
        let end = SimTime::ZERO + SimDuration::from_secs(1);
        net.run_until(end);
        let r = net.report(end);
        assert_eq!(r.station_names, vec!["B".to_string(), "P".to_string()]);
        assert_eq!(r.streams[0].name, "P-B");
        assert_eq!(r.streams[0].src, "P");
        assert_eq!(r.streams[0].dst, "B");
    }

    #[test]
    fn report_before_warmup_window_is_empty() {
        let mut net = one_cell().build();
        net.set_warmup(SimTime::ZERO + SimDuration::from_secs(100));
        let end = SimTime::ZERO + SimDuration::from_secs(10);
        net.run_until(end);
        let r = net.report(end);
        assert_eq!(r.streams[0].delivered, 0);
        assert_eq!(r.measured_secs, 0.0);
        assert_eq!(r.streams[0].throughput_pps, 0.0, "no division by zero");
    }

    #[test]
    fn mac_stats_surface_through_the_report() {
        let mut net = one_cell().build();
        let end = SimTime::ZERO + SimDuration::from_secs(5);
        net.run_until(end);
        let r = net.report(end);
        let pad = r.mac_stats[1].expect("WMac exposes stats");
        assert!(pad.rts_sent > 0);
        assert!(pad.data_sent > 0);
        let base = r.mac_stats[0].expect("base stats");
        assert!(base.cts_sent > 0 && base.ack_sent > 0);
    }
}
