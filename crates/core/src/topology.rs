//! Synthetic office-floor topologies for scaling experiments.
//!
//! The paper's figures are hand-drawn single- and two-cell layouts; this
//! module generates the *large* version of the same world: a floor of
//! square rooms on a grid, each with one base station at ceiling height
//! and a handful of pads, separated by corridors where roaming pads walk.
//! Room pitch defaults to 16 ft, so a room's pads are all within the
//! 10 ft reception range of their base while neighboring rooms overlap
//! just enough to contend at the edges — the regime MACAW's RRTS and
//! backoff-copying are designed for.
//!
//! Everything is driven by [`SimRng`] from the caller's seed, so a given
//! `(config, mac, seed)` triple always produces the identical scenario —
//! the `scale` bench depends on this to compare media and protocols on
//! bitwise-identical inputs.

use macaw_phy::Point;
use macaw_sim::SimRng;

use crate::scenario::{MacKind, Scenario};

/// Base-station height (ft), matching the paper's figures.
const BASE_Z: f64 = 6.0;

/// Shape and load knobs for [`scale_topology`].
#[derive(Clone, Copy, Debug)]
pub struct ScaleConfig {
    /// Total station count: bases + room pads + corridor walkers.
    pub stations: usize,
    /// Stations per room including its base (≥ 2). Controls density:
    /// smaller rooms mean more cells and less intra-cell contention.
    pub stations_per_room: usize,
    /// Center-to-center distance between adjacent rooms (ft).
    pub room_pitch_ft: f64,
    /// Width of the corridor strip between room rows (ft).
    pub corridor_width_ft: f64,
    /// Minimum distance (ft) from a room's walls to its pads (≥ 1).
    /// Default 1 ft — the paper-style floor, where edge pads of adjacent
    /// rooms overhear each other and rooms contend at the boundaries.
    /// Raising it to 6 ft on the default 16 ft pitch pulls every pad deep
    /// enough into its room that adjacent rooms can no longer couple at
    /// all: with `walker_share = 0` the floor decomposes into one coupling
    /// island per room (see `crate::partition`), the regime where
    /// `Scenario::run_with_shards` scales across cores.
    pub room_inset_ft: f64,
    /// Fraction of all stations placed in corridors instead of rooms.
    pub walker_share: f64,
    /// Probability that a pad or walker sources an uplink stream to its
    /// base — the offered-load knob.
    pub stream_load: f64,
    /// Fraction of streaming pads that additionally receive a downlink
    /// stream from their base.
    pub downlink_share: f64,
    /// Per-stream offered load (packets per second).
    pub pps: u64,
    /// Packet size (bytes).
    pub bytes: u32,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            stations: 64,
            stations_per_room: 8,
            room_pitch_ft: 16.0,
            corridor_width_ft: 8.0,
            room_inset_ft: 1.0,
            walker_share: 0.1,
            stream_load: 0.75,
            downlink_share: 0.25,
            pps: 16,
            bytes: 512,
        }
    }
}

impl ScaleConfig {
    /// A config with `stations` stations and every other knob default.
    pub fn with_stations(stations: usize) -> Self {
        ScaleConfig {
            stations,
            ..ScaleConfig::default()
        }
    }
}

/// Generate a random office floor per `cfg`, every station running `mac`.
///
/// Rooms fill a near-square grid row-major until the station budget is
/// spent: one base per room plus up to `stations_per_room - 1` pads at
/// random interior offsets. Walkers land in the corridor strips below
/// their row and stream to the nearest room base. Positions use whole-foot
/// offsets, which cube-snapping then leaves alone.
pub fn scale_topology(cfg: &ScaleConfig, mac: MacKind, seed: u64) -> Scenario {
    assert!(cfg.stations >= 2, "a topology needs at least two stations");
    assert!(
        cfg.stations_per_room >= 2,
        "a room is a base plus at least one pad"
    );
    let mut rng = SimRng::new(seed ^ 0x0FF1_CE00);
    let mut sc = Scenario::new(seed);

    let walkers = ((cfg.stations as f64 * cfg.walker_share) as usize)
        .min(cfg.stations.saturating_sub(cfg.stations_per_room));
    let roomed = cfg.stations - walkers;
    let rooms = roomed.div_ceil(cfg.stations_per_room);
    let rooms_per_row = (1..).find(|&w| w * w >= rooms).unwrap_or(1);
    let pitch = cfg.room_pitch_ft;
    let row_pitch = pitch + cfg.corridor_width_ft;

    // Rooms row-major; remember each base so pads and walkers can stream
    // to it.
    let mut bases: Vec<(usize, Point)> = Vec::with_capacity(rooms);
    let mut placed = 0usize;
    let mut streams = 0usize;
    for room in 0..rooms {
        if placed >= roomed {
            break;
        }
        let (row, col) = (room / rooms_per_row, room % rooms_per_row);
        let origin = (col as f64 * pitch, row as f64 * row_pitch);
        let center = Point::new(origin.0 + pitch / 2.0, origin.1 + pitch / 2.0, BASE_Z);
        let base = sc.add_station(&format!("B{room}"), center, mac);
        bases.push((base, center));
        placed += 1;

        let pads = (cfg.stations_per_room - 1).min(roomed - placed);
        for p in 0..pads {
            // Random whole-foot offset in the room interior, at least
            // `room_inset_ft` from the walls; everything is within pitch/√2
            // of the base, i.e. in range for the default 16 ft pitch. The
            // draw is `inset − 1` plus a roll over the remaining span, so
            // the default inset of 1 ft consumes the exact RNG sequence
            // (and produces the exact offsets) this generator always has.
            let inset = cfg.room_inset_ft;
            let span = ((pitch - 2.0 * inset) as u64).max(1);
            let dx = (inset - 1.0) + rng.uniform_inclusive(1, span) as f64;
            let dy = (inset - 1.0) + rng.uniform_inclusive(1, span) as f64;
            let pos = Point::new(origin.0 + dx, origin.1 + dy, 0.0);
            let pad = sc.add_station(&format!("P{room}_{p}"), pos, mac);
            placed += 1;
            if rng.chance(cfg.stream_load) {
                sc.add_udp_stream(&format!("u{room}_{p}"), pad, base, cfg.pps, cfg.bytes);
                streams += 1;
                if rng.chance(cfg.downlink_share) {
                    sc.add_udp_stream(&format!("d{room}_{p}"), base, pad, cfg.pps, cfg.bytes);
                    streams += 1;
                }
            }
        }
    }

    // Walkers roam the corridor strip below their room row and talk to
    // whichever base is nearest from there.
    let floor_w = (rooms_per_row as f64 * pitch).max(pitch);
    let corridor_rows = rooms.div_ceil(rooms_per_row);
    for w in 0..walkers {
        let row = w % corridor_rows.max(1);
        let x = rng.uniform_inclusive(1, floor_w as u64 - 1) as f64;
        let y = row as f64 * row_pitch + pitch + cfg.corridor_width_ft / 2.0;
        let pos = Point::new(x, y, 0.0);
        let id = sc.add_station(&format!("W{w}"), pos, mac);
        let nearest = bases
            .iter()
            .min_by(|a, b| {
                a.1.distance(pos)
                    .partial_cmp(&b.1.distance(pos))
                    .expect("distances are finite")
            })
            .expect("at least one room exists")
            .0;
        if rng.chance(cfg.stream_load) {
            sc.add_udp_stream(&format!("w{w}"), id, nearest, cfg.pps, cfg.bytes);
            streams += 1;
        }
    }

    // A silent floor measures nothing: guarantee at least one stream.
    if streams == 0 {
        let (base, _) = bases[0];
        let pad = (0..cfg.stations)
            .find(|&s| s != base)
            .expect("more than one station");
        sc.add_udp_stream("u_floor", pad, base, cfg.pps, cfg.bytes);
    }
    sc
}

#[cfg(test)]
mod tests {
    use super::*;
    use macaw_phy::{Medium, StationId};

    #[test]
    fn station_budget_is_spent_exactly() {
        for n in [2, 3, 16, 64, 257] {
            let sc = scale_topology(&ScaleConfig::with_stations(n), MacKind::Macaw, 7);
            assert_eq!(sc.station_count(), n, "n = {n}");
        }
    }

    #[test]
    fn same_seed_is_bitwise_reproducible() {
        let cfg = ScaleConfig::with_stations(48);
        let a = scale_topology(&cfg, MacKind::Macaw, 11);
        let b = scale_topology(&cfg, MacKind::Macaw, 11);
        assert_eq!(a.station_count(), b.station_count());
        for s in 0..a.station_count() {
            assert_eq!(a.station_position(s), b.station_position(s));
        }
    }

    #[test]
    fn different_seeds_shuffle_the_floor() {
        let cfg = ScaleConfig::with_stations(48);
        let a = scale_topology(&cfg, MacKind::Macaw, 1);
        let b = scale_topology(&cfg, MacKind::Macaw, 2);
        let moved = (0..48)
            .filter(|&s| a.station_position(s) != b.station_position(s))
            .count();
        assert!(moved > 0, "the layout must actually be random");
    }

    #[test]
    fn every_room_pad_is_in_range_of_its_base() {
        let sc = scale_topology(&ScaleConfig::with_stations(64), MacKind::Macaw, 3);
        let net = sc.build().expect("scale topology builds");
        let m = net.medium();
        // Base B0 is station 0; its room's pads follow it immediately.
        for pad in 1..8 {
            assert!(
                m.in_range(StationId(0), StationId(pad)),
                "pad {pad} must hear its own base"
            );
        }
    }

    #[test]
    fn a_floor_always_offers_some_load() {
        let mut cfg = ScaleConfig::with_stations(16);
        cfg.stream_load = 0.0;
        let sc = scale_topology(&cfg, MacKind::Macaw, 5);
        sc.build().expect("a silent floor still gets one stream");
    }
}
