//! Campus mobility: random-waypoint motion over a generated floor plan.
//!
//! The paper's topologies are static snapshots, but its motivating setting
//! is people carrying pads around an office building. This module supplies
//! the missing motion: a **campus** is a [`scale_topology`] floor (hundreds
//! of cutoff-sized rooms) whose ground-level stations roam under the
//! classic random-waypoint model — pick a uniform waypoint on the floor,
//! walk toward it at constant speed, dwell, repeat.
//!
//! Motion is *declared*, not simulated ad hoc: the driver samples every
//! mover's position once per tick and emits one
//! [`Scenario::move_stations_at`] batch per tick, so mobility flows through
//! the same scheduled-action path as every fault plan. That keeps the whole
//! determinism story intact for free — the batches are part of the
//! scenario, so they are covered by [`Scenario::fingerprint`] (the run
//! cache key), replicated into shard projections, and folded into the
//! coupling partition's position instances.
//!
//! Everything derives from `SimRng` streams forked off the caller's seed:
//! the same `(config, seed, duration)` triple always yields the identical
//! move plan, bit for bit.

use macaw_phy::Point;
use macaw_sim::{SimDuration, SimRng, SimTime};

use crate::scenario::{MacKind, Scenario};
use crate::topology::{scale_topology, ScaleConfig};

/// Knobs for the random-waypoint driver.
#[derive(Clone, Copy, Debug)]
pub struct WaypointConfig {
    /// Walking speed in feet per second (4 ft/s is a brisk walk).
    pub speed_fps: f64,
    /// Sampling tick: the driver emits one move batch per tick. Smaller
    /// ticks mean smoother paths and more (smaller) moves.
    pub tick: SimDuration,
    /// Dwell time at each reached waypoint. Paused movers still appear in
    /// every batch — their entries are same-cube no-ops, the cheap path
    /// the medium's mover pipeline early-outs.
    pub pause: SimDuration,
}

impl Default for WaypointConfig {
    fn default() -> Self {
        WaypointConfig {
            speed_fps: 4.0,
            tick: SimDuration::from_millis(500),
            pause: SimDuration::from_secs(2),
        }
    }
}

/// Shape of a campus scenario: a [`ScaleConfig`] floor plus mobility knobs.
#[derive(Clone, Copy, Debug)]
pub struct CampusConfig {
    /// The office floor underneath: rooms, pads, walkers, streams.
    pub floor: ScaleConfig,
    /// Fraction of ground-level stations (pads and walkers; bases stay
    /// bolted to the ceiling) that roam. 0 disables mobility entirely —
    /// no batches are scheduled, so the scenario is byte-identical to the
    /// plain floor.
    pub mobile_share: f64,
    /// The waypoint model for the movers.
    pub waypoint: WaypointConfig,
}

impl CampusConfig {
    /// A campus of `stations` stations with every other knob default.
    pub fn with_stations(stations: usize) -> Self {
        CampusConfig {
            floor: ScaleConfig::with_stations(stations),
            mobile_share: 0.1,
            waypoint: WaypointConfig::default(),
        }
    }
}

/// The ground-level (z = 0) stations of a scenario — the pads and walkers
/// a campus may set in motion. Bases sit at ceiling height and never move.
pub fn ground_stations(sc: &Scenario) -> Vec<usize> {
    (0..sc.station_count())
        .filter(|&s| sc.station_position(s).is_some_and(|p| p.z == 0.0))
        .collect()
}

/// The axis-aligned x/y bounding rectangle of every station in `sc`
/// (z = 0), the natural roam area for its movers. Returns a degenerate
/// rectangle at the origin for an empty scenario.
pub fn campus_rect(sc: &Scenario) -> (Point, Point) {
    let mut any = false;
    let (mut x0, mut y0, mut x1, mut y1) = (f64::MAX, f64::MAX, f64::MIN, f64::MIN);
    for s in 0..sc.station_count() {
        if let Some(p) = sc.station_position(s) {
            any = true;
            x0 = x0.min(p.x);
            y0 = y0.min(p.y);
            x1 = x1.max(p.x);
            y1 = y1.max(p.y);
        }
    }
    if !any {
        return (Point::new(0.0, 0.0, 0.0), Point::new(0.0, 0.0, 0.0));
    }
    (Point::new(x0, y0, 0.0), Point::new(x1, y1, 0.0))
}

/// Drive `movers` through random-waypoint motion inside `rect` until
/// `until`, appending one [`Scenario::move_stations_at`] batch per tick.
/// Every mover appears in every batch (paused or crawling movers produce
/// same-cube no-op entries). Waypoints are whole-foot points, exactly like
/// the topology generators, so cube snapping leaves them alone. Returns
/// the number of move entries emitted.
///
/// The RNG is drawn in (tick, mover) order, one draw pair per new
/// waypoint, so the plan is a pure function of `(movers, rect, cfg,
/// until, rng state)`.
pub fn add_waypoint_mobility(
    sc: &mut Scenario,
    movers: &[usize],
    rect: (Point, Point),
    cfg: &WaypointConfig,
    until: SimDuration,
    rng: &mut SimRng,
) -> u64 {
    if movers.is_empty() || cfg.speed_fps <= 0.0 {
        return 0;
    }
    let tick_ns = cfg.tick.as_nanos().max(1);
    let step = cfg.speed_fps * (tick_ns as f64 / 1e9);
    let pause_ticks = (cfg.pause.as_nanos() / tick_ns) as u32;
    // Whole-foot waypoint bounds; a degenerate axis pins that coordinate.
    let (xl, xh) = (rect.0.x.ceil() as u64, (rect.1.x.floor() as u64).max(rect.0.x.ceil() as u64));
    let (yl, yh) = (rect.0.y.ceil() as u64, (rect.1.y.floor() as u64).max(rect.0.y.ceil() as u64));
    let draw = |rng: &mut SimRng| {
        Point::new(
            rng.uniform_inclusive(xl, xh) as f64,
            rng.uniform_inclusive(yl, yh) as f64,
            0.0,
        )
    };

    struct Walker {
        pos: Point,
        target: Point,
        pause_left: u32,
    }
    let mut state: Vec<Walker> = movers
        .iter()
        .map(|&m| {
            let pos = sc
                .station_position(m)
                .expect("mover indices name existing stations");
            let target = draw(rng);
            Walker {
                pos,
                target,
                pause_left: 0,
            }
        })
        .collect();

    let mut batch: Vec<(usize, Point)> = Vec::with_capacity(movers.len());
    let mut emitted = 0u64;
    for t in 1.. {
        let at_ns = t * tick_ns;
        if at_ns >= until.as_nanos() {
            break;
        }
        batch.clear();
        for (k, &m) in movers.iter().enumerate() {
            let w = &mut state[k];
            if w.pause_left > 0 {
                w.pause_left -= 1;
            } else {
                let dist = w.pos.distance(w.target);
                if dist <= step {
                    w.pos = w.target;
                    w.target = draw(rng);
                    w.pause_left = pause_ticks;
                } else {
                    let s = step / dist;
                    w.pos = Point::new(
                        w.pos.x + (w.target.x - w.pos.x) * s,
                        w.pos.y + (w.target.y - w.pos.y) * s,
                        w.pos.z,
                    );
                }
            }
            batch.push((m, w.pos));
        }
        sc.move_stations_at(SimTime::ZERO + SimDuration::from_nanos(at_ns), &batch);
        emitted += batch.len() as u64;
    }
    emitted
}

/// Generate a campus: a [`scale_topology`] floor whose ground stations
/// roam under random-waypoint motion for `until`. The mover set is an
/// even deterministic stride over the ground stations (exactly
/// `round(ground · mobile_share)` of them), and the mobility RNG is a
/// dedicated stream off `seed`, so floor layout and motion plan are
/// independently reproducible.
pub fn campus_topology(
    cfg: &CampusConfig,
    mac: MacKind,
    until: SimDuration,
    seed: u64,
) -> Scenario {
    let mut sc = scale_topology(&cfg.floor, mac, seed);
    let ground = ground_stations(&sc);
    let want = ((ground.len() as f64) * cfg.mobile_share).round() as usize;
    let want = want.min(ground.len());
    if want == 0 {
        return sc;
    }
    let movers: Vec<usize> = (0..want).map(|i| ground[i * ground.len() / want]).collect();
    let rect = campus_rect(&sc);
    // "MOBI": the mobility stream must not collide with the topology
    // stream (seed ^ 0x0FF1_CE00) or the scenario's own forks.
    let mut rng = SimRng::new(seed ^ 0x4D4F_4249);
    add_waypoint_mobility(&mut sc, &movers, rect, &cfg.waypoint, until, &mut rng);
    sc
}

#[cfg(test)]
mod tests {
    use super::*;

    const RUN: SimDuration = SimDuration::from_secs(10);

    #[test]
    fn campus_is_bitwise_reproducible() {
        let cfg = CampusConfig::with_stations(48);
        let a = campus_topology(&cfg, MacKind::Macaw, RUN, 11);
        let b = campus_topology(&cfg, MacKind::Macaw, RUN, 11);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn fingerprint_covers_the_motion_plan() {
        let mut cfg = CampusConfig::with_stations(48);
        let base = campus_topology(&cfg, MacKind::Macaw, RUN, 11).fingerprint();

        // No movers: a different plan (none), a different fingerprint.
        let mut still = cfg;
        still.mobile_share = 0.0;
        assert_ne!(
            campus_topology(&still, MacKind::Macaw, RUN, 11).fingerprint(),
            base
        );

        // Same movers, different speed: every waypoint sample shifts.
        cfg.waypoint.speed_fps = 8.0;
        assert_ne!(
            campus_topology(&cfg, MacKind::Macaw, RUN, 11).fingerprint(),
            base
        );
    }

    #[test]
    fn zero_share_schedules_no_batches() {
        let mut cfg = CampusConfig::with_stations(32);
        cfg.mobile_share = 0.0;
        let sc = campus_topology(&cfg, MacKind::Macaw, RUN, 3);
        let static_floor = scale_topology(&cfg.floor, MacKind::Macaw, 3);
        assert_eq!(sc.fingerprint(), static_floor.fingerprint());
    }

    #[test]
    fn movers_stay_inside_the_campus_rectangle() {
        let cfg = CampusConfig {
            mobile_share: 0.5,
            ..CampusConfig::with_stations(32)
        };
        let sc = campus_topology(&cfg, MacKind::Macaw, RUN, 7);
        let (lo, hi) = campus_rect(&sc);
        assert!(!sc.moves.is_empty(), "half the pads roam: batches exist");
        for &(_, p) in &sc.moves {
            // Waypoints are clamped to the rect; a position interpolates
            // between its start (inside) and a waypoint (inside).
            assert!(p.x >= lo.x - 1e-9 && p.x <= hi.x + 1e-9, "x = {}", p.x);
            assert!(p.y >= lo.y - 1e-9 && p.y <= hi.y + 1e-9, "y = {}", p.y);
            assert_eq!(p.z, 0.0, "ground stations roam on the ground");
        }
    }

    #[test]
    fn batches_couple_the_whole_mover_set() {
        // Two distant pairs are separate islands while static; a mover
        // batch that names stations of both merges them.
        let mut sc = Scenario::new(1);
        let a = sc.add_station("A", Point::new(0.0, 0.0, 0.0), MacKind::Macaw);
        sc.add_station("B", Point::new(4.0, 0.0, 0.0), MacKind::Macaw);
        let c = sc.add_station("C", Point::new(200.0, 0.0, 0.0), MacKind::Macaw);
        sc.add_station("D", Point::new(204.0, 0.0, 0.0), MacKind::Macaw);
        assert_eq!(sc.partition().unwrap().n_islands, 2);
        sc.move_stations_at(
            SimTime::ZERO + SimDuration::from_secs(1),
            &[(a, Point::new(1.0, 0.0, 0.0)), (c, Point::new(201.0, 0.0, 0.0))],
        );
        let p = sc.partition().unwrap();
        assert_eq!(p.n_islands, 1, "one batch event touches both pairs");
        assert_eq!(p.action_island[0], p.station_island[a]);
    }

    #[test]
    fn a_campus_runs_and_delivers_traffic() {
        let cfg = CampusConfig::with_stations(24);
        let sc = campus_topology(&cfg, MacKind::Macaw, RUN, 5);
        let r = sc.run(RUN, SimDuration::from_secs(1)).unwrap();
        assert!(
            r.total_throughput() > 0.0,
            "a moving campus still carries traffic"
        );
    }
}
