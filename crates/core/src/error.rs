//! Typed simulation errors.
//!
//! Scenario construction and the run loop return [`SimError`] instead of
//! panicking: a misconfigured scenario (dangling station index, TCP
//! multicast, inverted warm-up), an invalid fault schedule, or a run that
//! trips the watchdog all surface as values the caller — in particular the
//! `tables` / `perf` / `faults` binaries — can print and exit on. Internal
//! invariants (states unreachable from any public API) remain
//! `debug_assert!`s; `SimError` is strictly for conditions a user can
//! cause from outside.

use std::fmt;

use macaw_mac::MacInvariantViolation;
use macaw_sim::SimTime;

/// An error surfaced by scenario construction or a simulation run.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// The scenario description is inconsistent (unknown station index,
    /// invalid stream, bad parameter). The message names the offending
    /// element.
    InvalidScenario(String),
    /// A fault schedule references stations or times that do not exist or
    /// make no sense (crash of an unknown station, inverted window).
    InvalidFaultPlan(String),
    /// The run exceeded its event budget or looped at a single instant;
    /// `diagnostic` is a human-readable snapshot of the stuck network.
    WatchdogTripped {
        /// Simulated time at which the watchdog fired.
        at: SimTime,
        /// Total events processed when it fired.
        events: u64,
        /// Multi-line state snapshot (queue depth, per-station state).
        diagnostic: String,
    },
    /// A MAC state machine detected a broken internal invariant (a bug in
    /// the protocol implementation, or a deliberately broken variant under
    /// test). The run stops at the offending transition instead of
    /// panicking, so sweeps and the model checker can report it.
    MacInvariant {
        /// Simulated time of the offending transition.
        at: SimTime,
        /// The violation the MAC reported.
        violation: MacInvariantViolation,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidScenario(msg) => write!(f, "invalid scenario: {msg}"),
            SimError::InvalidFaultPlan(msg) => write!(f, "invalid fault plan: {msg}"),
            SimError::WatchdogTripped { at, events, diagnostic } => write!(
                f,
                "watchdog tripped at t={at} after {events} events\n{diagnostic}"
            ),
            SimError::MacInvariant { at, violation } => {
                write!(f, "at t={at}: {violation}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_actionable() {
        let e = SimError::InvalidScenario("stream \"x\": unknown destination station 9".into());
        assert!(e.to_string().contains("unknown destination station 9"));
        let w = SimError::WatchdogTripped {
            at: SimTime::ZERO,
            events: 42,
            diagnostic: "queue: 3 events".into(),
        };
        let s = w.to_string();
        assert!(s.contains("42 events") && s.contains("queue: 3 events"));
    }
}
