//! First end-to-end smoke checks of the assembled simulator.

use macaw_core::prelude::*;

fn single_stream(mac: MacKind) -> RunReport {
    let mut sc = Scenario::new(7);
    let base = sc.add_station("B", Point::new(0.0, 0.0, 6.0), mac);
    let pad = sc.add_station("P", Point::new(3.0, 0.0, 0.0), mac);
    sc.add_udp_stream("P-B", pad, base, 64, 512);
    sc.run(SimDuration::from_secs(60), SimDuration::from_secs(5)).unwrap()
}

#[test]
fn maca_single_stream_throughput_matches_table_9_shape() {
    let r = single_stream(MacKind::Maca);
    let t = r.throughput("P-B");
    // Paper Table 9: 53.04 pps. Accept a window around it.
    assert!(t > 48.0 && t < 56.5, "MACA single stream = {t} pps");
}

#[test]
fn macaw_single_stream_throughput_matches_table_9_shape() {
    let r = single_stream(MacKind::Macaw);
    let t = r.throughput("P-B");
    // Paper Table 9: 49.07 pps; MACAW pays the DS+ACK overhead.
    assert!(t > 44.0 && t < 52.0, "MACAW single stream = {t} pps");
    let maca = single_stream(MacKind::Maca).throughput("P-B");
    assert!(maca > t, "MACA ({maca}) must beat MACAW ({t}) on a clean single stream");
}

#[test]
fn runs_are_deterministic() {
    let a = single_stream(MacKind::Macaw);
    let b = single_stream(MacKind::Macaw);
    assert_eq!(a.stream("P-B").delivered, b.stream("P-B").delivered);
}
