//! Mobility bitwise-identity: a moving scenario reproduces exactly across
//! media and engines.
//!
//! The mover pipeline in `SparseMedium` (same-cube early-outs, delta-based
//! neighbor reconciliation, coalesced batch re-folds) is pure bookkeeping:
//! the dense-matrix oracle rebuilt from scratch on every move must produce
//! the identical `RunReport` down to the f64 bit patterns. Likewise the
//! sharded engine: move batches are island-local events, so a two-campus
//! scenario with independent mover populations merges back bitwise. And a
//! batch is semantically the *sequence* of its entries — declaring the same
//! motion as singleton `Move` actions or as one `MoveBatch` per tick yields
//! the same run.

use macaw_core::mobility::{self, CampusConfig, WaypointConfig};
use macaw_core::prelude::*;
use macaw_sim::SimRng;

const RUN: SimDuration = SimDuration::from_secs(10);
const WARM: SimDuration = SimDuration::from_secs(2);

fn moving_campus(seed: u64) -> Scenario {
    let mut cfg = CampusConfig::with_stations(40);
    cfg.mobile_share = 0.3;
    cfg.waypoint.speed_fps = 8.0;
    campus_topology(&cfg, MacKind::Macaw, RUN, seed)
}

#[test]
fn moving_campus_sparse_matches_dense_bitwise() {
    let sparse = moving_campus(3).run(RUN, WARM).unwrap();
    let dense = moving_campus(3).run_dense(RUN, WARM).unwrap();
    assert_eq!(sparse, dense, "sparse and dense reports differ structurally");
    assert_eq!(
        format!("{sparse:?}"),
        format!("{dense:?}"),
        "sparse and dense reports differ in f64 bit patterns"
    );
    assert!(sparse.events_processed > 0, "vacuous comparison");
}

/// Two identical office clusters 500 ft apart, each with its own roaming
/// pads confined to its own 10 ft × 10 ft patch: two coupling islands.
fn two_campuses(seed: u64) -> Scenario {
    let mut sc = Scenario::new(seed);
    let mut rng = SimRng::new(seed ^ 0xCAFE);
    for (tag, ox) in [("a", 0.0), ("b", 500.0)] {
        let base = sc.add_station(
            &format!("B{tag}"),
            Point::new(ox + 5.0, 5.0, 6.0),
            MacKind::Macaw,
        );
        let mut movers = Vec::new();
        for p in 0..3 {
            let pad = sc.add_station(
                &format!("P{tag}{p}"),
                Point::new(ox + 2.0 + p as f64 * 3.0, 3.0, 0.0),
                MacKind::Macaw,
            );
            sc.add_udp_stream(&format!("s{tag}{p}"), pad, base, 16, 512);
            movers.push(pad);
        }
        let rect = (
            Point::new(ox, 0.0, 0.0),
            Point::new(ox + 10.0, 10.0, 0.0),
        );
        let wp = WaypointConfig {
            speed_fps: 6.0,
            tick: SimDuration::from_millis(250),
            pause: SimDuration::from_millis(500),
        };
        mobility::add_waypoint_mobility(&mut sc, &movers, rect, &wp, RUN, &mut rng);
    }
    sc
}

#[test]
fn two_moving_campuses_are_shard_count_invariant() {
    assert_eq!(
        two_campuses(7).partition().unwrap().n_islands,
        2,
        "movers confined to their own campus keep the islands apart"
    );
    let serial = two_campuses(7).run(RUN, WARM).unwrap();
    for shards in [1, 2, 4] {
        let (sharded, stats) = two_campuses(7).run_with_shards(RUN, WARM, shards).unwrap();
        assert_eq!(
            serial, sharded,
            "{shards}-shard report differs structurally from serial"
        );
        assert_eq!(
            format!("{serial:?}"),
            format!("{sharded:?}"),
            "{shards}-shard report differs from serial in f64 bit patterns"
        );
        assert!(
            stats.medium.set_position_ops > 0,
            "both campuses actually moved"
        );
    }
}

#[test]
fn a_batch_matches_the_same_moves_applied_singly() {
    // The same hand-written motion, declared once as per-tick batches and
    // once as singleton Move actions at the same instants. Batched moves
    // defer interference re-folds to the end of the batch, so this checks
    // the deferral is unobservable end to end.
    let build = |batched: bool| {
        let mut sc = Scenario::new(11);
        let base = sc.add_station("B", Point::new(5.0, 5.0, 6.0), MacKind::Macaw);
        let p0 = sc.add_station("P0", Point::new(2.0, 3.0, 0.0), MacKind::Macaw);
        let p1 = sc.add_station("P1", Point::new(8.0, 3.0, 0.0), MacKind::Macaw);
        sc.add_udp_stream("s0", p0, base, 32, 512);
        sc.add_udp_stream("s1", p1, base, 32, 512);
        for t in 1..30u64 {
            let at = SimTime::ZERO + SimDuration::from_millis(t * 300);
            let x = (t % 9) as f64 + 1.0;
            let moves = [
                (p0, Point::new(x, 3.0, 0.0)),
                (p1, Point::new(10.0 - x, 7.0, 0.0)),
            ];
            if batched {
                sc.move_stations_at(at, &moves);
            } else {
                for &(s, to) in &moves {
                    sc.move_station_at(at, s, to);
                }
            }
        }
        sc
    };
    let singles = build(false).run(RUN, WARM).unwrap();
    let batches = build(true).run(RUN, WARM).unwrap();
    // Event accounting legitimately differs — one MoveBatch event replaces
    // N Move events — so compare the behavioral fields, not the ledger.
    assert_eq!(singles.streams, batches.streams, "stream rows must match");
    assert_eq!(
        format!("{:?}", singles.streams),
        format!("{:?}", batches.streams),
        "stream rows must match in f64 bit patterns"
    );
    assert_eq!(singles.mac_stats, batches.mac_stats);
    assert_eq!(singles.mac_drops, batches.mac_drops);
    assert_eq!(
        singles.data_air_secs.to_bits(),
        batches.data_air_secs.to_bits()
    );
    assert_eq!(
        singles.total_air_secs.to_bits(),
        batches.total_air_secs.to_bits()
    );
    assert_eq!(
        singles.events_processed,
        batches.events_processed + 29,
        "batching collapses the 29 two-entry batches into one event each"
    );
}
