//! # macaw — a reproduction of *MACAW: A Media Access Protocol for
//! Wireless LAN's* (Bharghavan, Demers, Shenker, Zhang; SIGCOMM 1994)
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`sim`] — deterministic discrete-event engine (time, events, RNG);
//! * [`phy`] — the near-field radio medium (cube-grid propagation, capture,
//!   noise, mobility);
//! * [`mac`] — the protocols: MACAW, MACA and CSMA, plus every backoff
//!   algorithm and sharing scheme the paper discusses;
//! * [`transport`] — UDP and the paper-era TCP with its 0.5 s minimum RTO;
//! * [`traffic`] — CBR / Poisson / on-off workload generators;
//! * [`core`] — scenario builder, the paper's Figure 1–11 topologies,
//!   the simulation runner and statistics.
//!
//! ## Quickstart
//!
//! ```
//! use macaw::prelude::*;
//!
//! // Two pads saturating a single cell under MACAW: fair and fast.
//! let mut sc = Scenario::new(42);
//! let base = sc.add_station("B", Point::new(0.0, 0.0, 6.0), MacKind::Macaw);
//! let p1 = sc.add_station("P1", Point::new(-3.0, 0.0, 0.0), MacKind::Macaw);
//! let p2 = sc.add_station("P2", Point::new(3.0, 0.0, 0.0), MacKind::Macaw);
//! sc.add_udp_stream("P1-B", p1, base, 64, 512);
//! sc.add_udp_stream("P2-B", p2, base, 64, 512);
//! let report = sc.run(SimDuration::from_secs(30), SimDuration::from_secs(5)).unwrap();
//! assert!(report.total_throughput() > 30.0);
//! assert!(report.jain_fairness() > 0.95);
//! ```
//!
//! See `examples/` for runnable demonstrations and
//! `cargo run --release -p macaw-bench --bin tables` for the full
//! paper-table reproduction.

pub use macaw_core as core;
pub use macaw_mac as mac;
pub use macaw_phy as phy;
pub use macaw_sim as sim;
pub use macaw_traffic as traffic;
pub use macaw_transport as transport;

/// One-stop imports for building and running scenarios.
pub mod prelude {
    pub use macaw_core::figures;
    pub use macaw_core::prelude::*;
}
