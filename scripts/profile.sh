#!/usr/bin/env bash
# One-command CPU profile of any bench binary invocation:
#
#   scripts/profile.sh mobility                 # profile the full sweep
#   scripts/profile.sh -n 40 scale -- --smoke   # top 40, smoke workload
#   scripts/profile.sh tables -- --quick --table 5
#
# Builds the binary in release (with frame pointers kept so the collector
# can unwind), records one run under gprofng (falling back to perf when
# gprofng is absent), and prints the top-N functions by *inclusive* CPU
# time — the view that answers "which subsystem is the run spending its
# wall clock under?". The raw experiment directory is left in
# target/profile/ for deeper digging (gprofng display text / perf report).
set -euo pipefail
cd "$(dirname "$0")/.."

top=25
while [ $# -gt 0 ]; do
  case "$1" in
    -n) top="${2:?-n needs a count}"; shift 2 ;;
    -h|--help) grep '^#' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
    *) break ;;
  esac
done
bin="${1:?usage: profile.sh [-n TOP] <bench-bin> [-- args...]}"
shift
[ "${1:-}" = "--" ] && shift

echo "== build $bin (release, frame pointers) =="
RUSTFLAGS="${RUSTFLAGS:-} -C force-frame-pointers=yes" \
  cargo build --release -p macaw-bench --bin "$bin"
exe="target/release/$bin"

mkdir -p target/profile
stamp="$(date +%Y%m%d-%H%M%S)"
if command -v gprofng >/dev/null 2>&1; then
  expdir="target/profile/$bin-$stamp.er"
  echo "== gprofng collect: $exe $* =="
  gprofng collect app -o "$expdir" "$exe" "$@"
  echo
  echo "== top $top functions by inclusive CPU time ($expdir) =="
  gprofng display text -metrics i.totalcpu:e.totalcpu \
    -sort i.totalcpu -limit "$top" -functions "$expdir"
elif command -v perf >/dev/null 2>&1; then
  data="target/profile/$bin-$stamp.perf.data"
  echo "== perf record: $exe $* =="
  perf record -g --call-graph fp -o "$data" -- "$exe" "$@"
  echo
  echo "== top $top functions by inclusive (children) CPU time ($data) =="
  perf report -i "$data" --stdio --children --sort symbol 2>/dev/null |
    grep -v '^#' | head -n "$top"
else
  echo "profile.sh: neither gprofng nor perf is installed" >&2
  exit 1
fi
