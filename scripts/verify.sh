#!/usr/bin/env bash
# Tier-1 verification: offline release build, full test suite, and a perf
# smoke run. Exits non-zero if anything fails to build, any test fails, or
# the perf harness panics / produces non-finite throughput.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test -q --workspace

echo "== perf smoke =="
cargo run --release -p macaw-bench --bin perf -- --quick

echo "verify: OK"
