#!/usr/bin/env bash
# Tier-1 verification: offline release build, lint wall, full test suite,
# and smoke runs of the perf and fault-injection harnesses. Exits non-zero
# if anything fails to build, clippy reports any warning, any test fails,
# or either harness panics / produces non-finite throughput / loses the
# corruption-ablation claim (MACAW ahead of MACA on a corrupting channel).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --workspace

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tests =="
cargo test -q --workspace

echo "== perf smoke =="
cargo run --release -p macaw-bench --bin perf -- --quick

echo "== engine smoke (FEL microbench + queue-backend equivalence) =="
cargo run --release -p macaw-bench --bin engine -- --quick
cargo test -q --release -p macaw-sim --test proptest_queue
cargo test -q --release -p macaw-bench --test determinism ladder_and_heap

echo "== model-checker smoke (exhaustive proofs + reduction-ratio guard + --jobs determinism + seeded-bug detection) =="
cargo run --release -p macaw-bench --bin check -- --smoke
cargo test -q --release -p macaw-check --test proofs
cargo test -q --release -p macaw-check --test regression

echo "== reduction soundness (reduced explorer vs oracle + parallel split determinism) =="
cargo test -q --release -p macaw-check --test reduction
cargo test -q --release -p macaw-bench --test check_par

echo "== faults smoke =="
cargo run --release -p macaw-bench --bin faults -- --smoke

echo "== scale smoke (serial vs 4-shard bitwise identity) =="
cargo run --release -p macaw-bench --bin scale -- --quick --shards 4

echo "== per-event-cost guard (flat medium cost across N) =="
cargo run --release -p macaw-bench --bin scale -- --smoke

echo "== per-move-cost guard (flat mover cost across N + moving-run cache round-trip) =="
cargo run --release -p macaw-bench --bin mobility -- --smoke

echo "== medium churn suite (slab vs oracles under end_tx-heavy schedules) =="
cargo test -q --release -p macaw-phy --test churn_medium

echo "== sharded-engine invariance suite =="
cargo test -q --release -p macaw-bench --test sharding

echo "== replicate smoke (executor + run cache + multi-seed sweep) =="
cargo run --release -p macaw-bench --bin replicate -- --quick
cargo test -q --release -p macaw-bench --test executor

echo "== alloc-stats feature gate =="
cargo build --release -p macaw-bench --features alloc-stats

echo "verify: OK"
