//! Cross-crate conservation and sanity invariants, checked over a variety
//! of scenarios: nothing is delivered that was not offered, UDP never
//! duplicates, MAC counters stay mutually consistent, air time never
//! exceeds wall time.

use macaw::prelude::*;

const DUR: SimDuration = SimDuration::from_secs(120);
const WARM: SimDuration = SimDuration::from_secs(10);

fn scenarios() -> Vec<(&'static str, RunReport)> {
    let off = SimTime::ZERO + SimDuration::from_secs(40);
    let arrive = SimTime::ZERO + SimDuration::from_secs(40);
    vec![
        ("fig2/maca", figures::figure2(MacKind::Maca, 3).run(DUR, WARM).unwrap()),
        ("fig3/macaw", figures::figure3(MacKind::Macaw, 3).run(DUR, WARM).unwrap()),
        ("fig5/macaw", figures::figure5(MacKind::Macaw, 3).run(DUR, WARM).unwrap()),
        ("fig9/macaw", figures::figure9(MacKind::Macaw, 3, off).run(DUR, WARM).unwrap()),
        ("fig10/maca", figures::figure10(MacKind::Maca, 3).run(DUR, WARM).unwrap()),
        ("fig11/macaw", figures::figure11(MacKind::Macaw, 3, arrive).run(DUR, WARM).unwrap()),
        ("tbl4/noise", figures::table4(MacKind::Macaw, 3, 0.1).run(DUR, WARM).unwrap()),
        (
            "fig1h/csma",
            figures::figure1_hidden(MacKind::Csma(Default::default()), 3).run(DUR, WARM).unwrap(),
        ),
    ]
}

fn zero_warmup_scenarios() -> Vec<(&'static str, RunReport)> {
    // Conservation must be checked over whole lifetimes: with a warm-up
    // window, a packet offered before the boundary but delivered after it
    // (queueing delay) legitimately counts as delivered-but-not-offered.
    let off = SimTime::ZERO + SimDuration::from_secs(40);
    vec![
        ("fig3/macaw", figures::figure3(MacKind::Macaw, 3).run(DUR, SimDuration::ZERO).unwrap()),
        ("fig9/macaw", figures::figure9(MacKind::Macaw, 3, off).run(DUR, SimDuration::ZERO).unwrap()),
        ("tbl4/noise", figures::table4(MacKind::Macaw, 3, 0.1).run(DUR, SimDuration::ZERO).unwrap()),
        (
            "fig1h/csma",
            figures::figure1_hidden(MacKind::Csma(Default::default()), 3)
                .run(DUR, SimDuration::ZERO).unwrap(),
        ),
    ]
}

#[test]
fn udp_streams_never_deliver_more_than_offered() {
    for (name, r) in zero_warmup_scenarios() {
        for s in &r.streams {
            assert!(
                s.delivered <= s.offered,
                "{name}/{}: delivered {} > offered {}",
                s.name,
                s.delivered,
                s.offered
            );
        }
    }
}

#[test]
fn throughput_never_exceeds_channel_capacity() {
    // 256 kbps / (512 B data + 90 B control overhead per packet) bounds a
    // single collision domain around 56 pps; multi-cell scenarios reuse
    // space, so bound per-stream rather than per-run.
    for (name, r) in scenarios() {
        for s in &r.streams {
            assert!(
                s.throughput_pps < 66.0,
                "{name}/{}: {} pps is beyond channel capacity",
                s.name,
                s.throughput_pps
            );
        }
    }
}

#[test]
fn air_time_is_bounded_by_run_time_per_station_population() {
    for (name, r) in scenarios() {
        // Total air seconds can exceed wall seconds only through spatial
        // reuse, which is bounded by the number of simultaneous
        // transmitters (≤ station count).
        let stations = r.station_names.len() as f64;
        assert!(
            r.total_air_secs <= r.measured_secs * stations,
            "{name}: air {:.1}s > {} stations x {:.1}s",
            r.total_air_secs,
            stations,
            r.measured_secs
        );
        assert!(r.data_air_secs <= r.total_air_secs + 1e-9, "{name}");
        assert!(r.data_utilization() <= stations, "{name}");
    }
}

#[test]
fn mac_counters_are_mutually_consistent() {
    for (name, r) in scenarios() {
        for (i, stats) in r.mac_stats.iter().enumerate() {
            let Some(s) = stats else { continue };
            let station = &r.station_names[i];
            assert!(
                s.packets_sent_ok + s.packets_dropped <= s.enqueued,
                "{name}/{station}: resolved more packets than enqueued"
            );
            assert!(
                s.data_sent <= s.rts_sent + s.cts_sent,
                "{name}/{station}: data without a preceding exchange"
            );
            assert!(
                s.rts_timeouts <= s.rts_sent,
                "{name}/{station}: more RTS timeouts than RTS sent"
            );
        }
    }
}

#[test]
fn jain_index_is_always_in_range() {
    for (name, r) in scenarios() {
        let j = r.jain_fairness();
        let n = r.streams.len() as f64;
        assert!(
            (1.0 / n - 1e-9..=1.0 + 1e-9).contains(&j),
            "{name}: Jain {j} outside [1/{n}, 1]"
        );
    }
}

#[test]
fn tcp_delivery_is_in_order_and_exactly_once() {
    // The TCP receiver's deliver_app sequence must be 0,1,2,... — the
    // delivered count equals the highest in-order sequence, so a duplicate
    // or gap would show up as delivered > offered or a stall.
    let r = figures::table4(MacKind::Macaw, 9, 0.05).run(DUR, WARM).unwrap();
    let s = r.stream("P-B");
    assert!(s.delivered > 0, "noise must not deadlock TCP");
    assert!(s.delivered <= s.offered);
}

#[test]
fn powered_off_station_stops_participating() {
    // Power P1 off before the measurement window opens: nothing of either
    // of its streams may be delivered inside the window.
    let off = SimTime::ZERO + SimDuration::from_secs(5);
    let r = figures::figure9(MacKind::Macaw, 3, off).run(DUR, WARM).unwrap();
    assert_eq!(
        r.stream("P1-B1").delivered,
        0,
        "a dead pad must not transmit"
    );
    assert_eq!(
        r.stream("B1-P1").delivered,
        0,
        "nothing can be delivered to a dead pad"
    );
    // The surviving streams keep running.
    assert!(r.throughput("P2-B1") > 5.0 && r.throughput("P3-B1") > 5.0);
}
