//! Determinism: a scenario is a pure function of `(topology, seed)`.
//! Replayability is what makes the paper tables reproducible at all.

use macaw::prelude::*;

const DUR: SimDuration = SimDuration::from_secs(60);
const WARM: SimDuration = SimDuration::from_secs(5);

fn fingerprint(r: &RunReport) -> Vec<(String, u64, u64)> {
    r.streams
        .iter()
        .map(|s| (s.name.clone(), s.offered, s.delivered))
        .collect()
}

#[test]
fn every_figure_replays_identically() {
    let arrive = SimTime::ZERO + SimDuration::from_secs(20);
    let off = SimTime::ZERO + SimDuration::from_secs(20);
    type Builder = Box<dyn Fn(u64) -> Scenario>;
    let builders: Vec<(&str, Builder)> = vec![
        ("fig1h", Box::new(|s| figures::figure1_hidden(MacKind::Macaw, s))),
        ("fig1e", Box::new(|s| figures::figure1_exposed(MacKind::Macaw, s))),
        ("fig2", Box::new(|s| figures::figure2(MacKind::Maca, s))),
        ("fig3", Box::new(|s| figures::figure3(MacKind::Macaw, s))),
        ("fig4", Box::new(|s| figures::figure4(MacKind::Macaw, s))),
        ("fig5", Box::new(|s| figures::figure5(MacKind::Macaw, s))),
        ("fig6", Box::new(|s| figures::figure6(MacKind::Macaw, s))),
        ("fig7", Box::new(|s| figures::figure7(MacKind::Macaw, s))),
        ("fig8", Box::new(|s| figures::figure8(MacKind::Macaw, s))),
        ("fig9", Box::new(move |s| figures::figure9(MacKind::Macaw, s, off))),
        ("fig10", Box::new(|s| figures::figure10(MacKind::Macaw, s))),
        ("fig11", Box::new(move |s| figures::figure11(MacKind::Macaw, s, arrive))),
        ("tbl4", Box::new(|s| figures::table4(MacKind::Macaw, s, 0.05))),
    ];
    for (name, build) in &builders {
        let a = build(99).run(DUR, WARM).unwrap();
        let b = build(99).run(DUR, WARM).unwrap();
        assert_eq!(
            fingerprint(&a),
            fingerprint(&b),
            "{name}: same seed must replay identically"
        );
    }
}

#[test]
fn different_seeds_usually_differ() {
    // Stochastic contention means two seeds almost surely differ in
    // delivered counts somewhere.
    let a = figures::figure3(MacKind::Macaw, 1).run(DUR, WARM).unwrap();
    let b = figures::figure3(MacKind::Macaw, 2).run(DUR, WARM).unwrap();
    assert_ne!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn incremental_and_one_shot_runs_agree() {
    // Driving the network in small steps must produce exactly the same
    // trajectory as one big run_until.
    let end = SimTime::ZERO + DUR;
    let mut stepped = figures::figure4(MacKind::Macaw, 5).build().unwrap();
    let mut t = SimTime::ZERO;
    while t < end {
        t += SimDuration::from_secs(7);
        stepped.run_until(t.min(end)).unwrap();
    }
    let mut oneshot = figures::figure4(MacKind::Macaw, 5).build().unwrap();
    oneshot.run_until(end).unwrap();
    assert_eq!(
        fingerprint(&stepped.report(end)),
        fingerprint(&oneshot.report(end))
    );
}
