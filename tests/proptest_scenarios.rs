//! Whole-system property tests: randomly generated topologies and
//! workloads run to completion without panics, and the conservation
//! invariants hold regardless of geometry, protocol mix or noise.

use macaw::mac::BackoffSharing;
use macaw::prelude::*;
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct RandomScenario {
    seed: u64,
    stations: Vec<(f64, f64, bool)>, // (x, y, is_base)
    streams: Vec<(usize, usize, u64, bool)>, // (src, dst, pps, tcp)
    mac: u8,
    error_rate: f64,
}

fn arb_scenario() -> impl Strategy<Value = RandomScenario> {
    let station = (-25.0f64..25.0, -25.0f64..25.0, any::<bool>());
    (
        any::<u64>(),
        proptest::collection::vec(station, 2..8),
        proptest::collection::vec((0usize..8, 0usize..8, 1u64..80, any::<bool>()), 1..6),
        0u8..4,
        0.0f64..0.3,
    )
        .prop_map(|(seed, stations, streams, mac, error_rate)| RandomScenario {
            seed,
            stations,
            streams,
            mac,
            error_rate,
        })
}

fn build(rs: &RandomScenario) -> Option<Scenario> {
    let mac = match rs.mac {
        0 => MacKind::Maca,
        1 => MacKind::Macaw,
        2 => MacKind::Csma(Default::default()),
        _ => {
            let mut c = MacConfig::macaw();
            c.backoff_sharing = BackoffSharing::Copy;
            c.use_rrts = false;
            MacKind::Custom(c)
        }
    };
    let mut sc = Scenario::new(rs.seed);
    let ids: Vec<usize> = rs
        .stations
        .iter()
        .enumerate()
        .map(|(i, (x, y, is_base))| {
            let z = if *is_base { 6.0 } else { 0.0 };
            sc.add_station(&format!("S{i}"), Point::new(*x, *y, z), mac)
        })
        .collect();
    sc.set_rx_error_rate(ids[0], rs.error_rate);
    let mut any_stream = false;
    for (i, (src, dst, pps, tcp)) in rs.streams.iter().enumerate() {
        let src = src % ids.len();
        let dst = dst % ids.len();
        if src == dst {
            continue;
        }
        any_stream = true;
        sc.add_stream(StreamSpec {
            name: format!("F{i}"),
            src,
            dst: Dest::Station(dst),
            transport: if *tcp {
                TransportKind::Tcp(TcpConfig::default())
            } else {
                TransportKind::Udp
            },
            source: SourceKind::Cbr { pps: *pps },
            bytes: 512,
            start: SimTime::ZERO,
            stop: None,
        });
    }
    any_stream.then_some(sc)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any random scenario runs to completion and conserves packets.
    /// (Zero warm-up: with a warm-up window, packets offered before the
    /// boundary but delivered after it legitimately make delivered exceed
    /// offered within the window.)
    #[test]
    fn random_scenarios_run_and_conserve(rs in arb_scenario()) {
        let Some(sc) = build(&rs) else { return Ok(()) };
        let r = sc.run(SimDuration::from_secs(30), SimDuration::ZERO).unwrap();
        for s in &r.streams {
            prop_assert!(s.delivered <= s.offered, "{}: {} > {}", s.name, s.delivered, s.offered);
            prop_assert!(s.throughput_pps.is_finite());
        }
        let n = r.streams.len() as f64;
        let j = r.jain_fairness();
        prop_assert!(j >= 1.0 / n - 1e-9 && j <= 1.0 + 1e-9);
    }

    /// Replay determinism holds for random scenarios too.
    #[test]
    fn random_scenarios_replay(rs in arb_scenario()) {
        let (Some(a), Some(b)) = (build(&rs), build(&rs)) else { return Ok(()) };
        let ra = a.run(SimDuration::from_secs(15), SimDuration::from_secs(2)).unwrap();
        let rb = b.run(SimDuration::from_secs(15), SimDuration::from_secs(2)).unwrap();
        for (sa, sb) in ra.streams.iter().zip(&rb.streams) {
            prop_assert_eq!(sa.delivered, sb.delivered);
            prop_assert_eq!(sa.offered, sb.offered);
        }
    }
}
