//! Integration tests asserting the qualitative *shape* of every table in
//! the paper, at durations short enough for CI (the full-length numbers
//! live in `cargo run -p macaw-bench --bin tables` and EXPERIMENTS.md).

use macaw::mac::BackoffSharing;
use macaw::prelude::*;

const DUR: SimDuration = SimDuration::from_secs(200);
const WARM: SimDuration = SimDuration::from_secs(20);

fn custom(f: impl Fn(&mut MacConfig)) -> MacKind {
    let mut c = MacConfig::maca();
    f(&mut c);
    MacKind::Custom(c)
}

fn era_331(ack: bool, ds: bool, rrts: bool) -> MacKind {
    custom(|c| {
        c.backoff_algo = BackoffAlgo::Mild;
        c.backoff_sharing = BackoffSharing::Copy;
        c.queues = QueueMode::PerStream;
        c.use_ack = ack;
        c.use_ds = ds;
        c.use_rrts = rrts;
    })
}

#[test]
fn figure1_csma_collapses_at_hidden_terminal_and_macaw_recovers() {
    let csma = figures::figure1_hidden(MacKind::Csma(Default::default()), 7).run(DUR, WARM).unwrap();
    assert!(
        csma.total_throughput() < 1.0,
        "CSMA hidden-terminal total must collapse, got {}",
        csma.total_throughput()
    );
    let macaw = figures::figure1_hidden(MacKind::Macaw, 7).run(DUR, WARM).unwrap();
    assert!(macaw.total_throughput() > 25.0);
    assert!(macaw.jain_fairness() > 0.9, "MACAW must also be fair");
}

#[test]
fn table1_beb_captures_and_copying_restores_fairness() {
    let beb = figures::figure2(custom(|_| ()), 11).run(DUR, WARM).unwrap();
    assert!(
        beb.jain_fairness() < 0.6,
        "BEB must show capture, Jain = {}",
        beb.jain_fairness()
    );
    let copy = figures::figure2(custom(|c| c.backoff_sharing = BackoffSharing::Copy), 11)
        .run(DUR, WARM).unwrap();
    assert!(
        copy.jain_fairness() > 0.95,
        "copying must be fair, Jain = {}",
        copy.jain_fairness()
    );
    assert!(copy.total_throughput() > 35.0);
}

#[test]
fn table2_mild_beats_beb_under_copying() {
    let mk = |algo| {
        custom(|c| {
            c.backoff_algo = algo;
            c.backoff_sharing = BackoffSharing::Copy;
        })
    };
    let beb = figures::figure3(mk(BackoffAlgo::Beb), 11).run(DUR, WARM).unwrap();
    let mild = figures::figure3(mk(BackoffAlgo::Mild), 11).run(DUR, WARM).unwrap();
    assert!(beb.jain_fairness() > 0.95 && mild.jain_fairness() > 0.95);
    assert!(
        mild.total_throughput() > beb.total_throughput(),
        "MILD ({:.1}) must beat BEB ({:.1})",
        mild.total_throughput(),
        beb.total_throughput()
    );
}

#[test]
fn table3_queue_model_sets_the_allocation_unit() {
    let mk = |q| {
        custom(|c| {
            c.backoff_algo = BackoffAlgo::Mild;
            c.backoff_sharing = BackoffSharing::Copy;
            c.queues = q;
        })
    };
    // Single FIFO: bandwidth per station, so P3's stream gets ~2x each of
    // the base station's two streams.
    let single = figures::figure4(mk(QueueMode::SingleFifo), 3).run(DUR, WARM).unwrap();
    let p3 = single.throughput("P3-B");
    let b_each = (single.throughput("B-P1") + single.throughput("B-P2")) / 2.0;
    assert!(
        p3 > 1.5 * b_each,
        "single queue: P3 ({p3:.1}) must get ~2x the base's streams ({b_each:.1})"
    );
    // Per-stream queues: roughly even thirds.
    let multi = figures::figure4(mk(QueueMode::PerStream), 3).run(DUR, WARM).unwrap();
    assert!(
        multi.jain_fairness() > 0.9,
        "per-stream queues must be fair, Jain = {}",
        multi.jain_fairness()
    );
}

#[test]
fn table4_link_ack_wins_under_heavy_noise() {
    let noack = figures::table4(era_331(false, false, false), 4, 0.1).run(DUR, WARM).unwrap();
    let ack = figures::table4(era_331(true, false, false), 4, 0.1).run(DUR, WARM).unwrap();
    let clean = figures::table4(era_331(false, false, false), 4, 0.0).run(DUR, WARM).unwrap();
    assert!(
        noack.throughput("P-B") < clean.throughput("P-B") / 4.0,
        "10% noise must collapse TCP without link recovery"
    );
    assert!(
        ack.throughput("P-B") > 1.5 * noack.throughput("P-B"),
        "link ACK ({:.1}) must beat transport-only recovery ({:.1}) at 10% noise",
        ack.throughput("P-B"),
        noack.throughput("P-B")
    );
}

#[test]
fn table5_ds_fixes_the_exposed_terminal_configuration() {
    let nods = figures::figure5(era_331(true, false, false), 5).run(DUR, WARM).unwrap();
    let ds = figures::figure5(era_331(true, true, false), 5).run(DUR, WARM).unwrap();
    assert!(
        ds.total_throughput() > nods.total_throughput() * 1.3,
        "DS must recover most of the lost capacity: {:.1} vs {:.1}",
        ds.total_throughput(),
        nods.total_throughput()
    );
    assert!(ds.jain_fairness() > 0.95, "with DS both streams share evenly");
    // The paper's with-DS operating point: ~23 pps per stream.
    assert!(ds.throughput("P1-B1") > 17.0 && ds.throughput("P2-B2") > 17.0);
}

#[test]
fn table6_rrts_improves_the_blocked_receiver() {
    let norrts = figures::figure6(era_331(true, true, false), 6).run(DUR, WARM).unwrap();
    let rrts = figures::figure6(era_331(true, true, true), 6).run(DUR, WARM).unwrap();
    assert!(rrts.jain_fairness() > 0.95);
    assert!(
        rrts.total_throughput() >= norrts.total_throughput() * 0.95,
        "RRTS must not cost meaningful capacity"
    );
    assert!(rrts.throughput("B1-P1") > 12.0 && rrts.throughput("B2-P2") > 12.0);
}

#[test]
fn table7_unsolved_configuration_denies_b1() {
    let r = figures::figure7(MacKind::Macaw, 7).run(DUR, WARM).unwrap();
    assert!(
        r.throughput("B1-P1") < r.throughput("P2-B2") / 5.0,
        "B1-P1 ({:.1}) must be starved relative to P2-B2 ({:.1})",
        r.throughput("B1-P1"),
        r.throughput("P2-B2")
    );
    assert!(r.throughput("P2-B2") > 35.0, "P2-B2 runs near capacity");
}

#[test]
fn table8_per_destination_backoff_isolates_a_dead_pad() {
    let off = SimTime::ZERO + SimDuration::from_secs(50);
    let single = {
        let mut c = MacConfig::macaw();
        c.backoff_sharing = BackoffSharing::Copy;
        figures::figure9(MacKind::Custom(c), 8, off).run(DUR, WARM).unwrap()
    };
    let perdst = figures::figure9(MacKind::Macaw, 8, off).run(DUR, WARM).unwrap();
    let survivors = ["B1-P2", "P2-B1", "B1-P3", "P3-B1"];
    let total = |r: &RunReport| survivors.iter().map(|s| r.throughput(s)).sum::<f64>();
    assert!(
        total(&perdst) > total(&single) * 1.2,
        "per-destination ({:.1}) must beat the single shared counter ({:.1})",
        total(&perdst),
        total(&single)
    );
}

#[test]
fn table9_overhead_ordering_holds() {
    let mk = |mac| {
        let mut sc = Scenario::new(7);
        let b = sc.add_station("B", Point::new(0.0, 0.0, 6.0), mac);
        let p = sc.add_station("P", Point::new(3.0, 0.0, 0.0), mac);
        sc.add_udp_stream("P-B", p, b, 64, 512);
        sc.run(DUR, WARM).unwrap()
    };
    let maca = mk(MacKind::Maca).throughput("P-B");
    let macaw = mk(MacKind::Macaw).throughput("P-B");
    assert!(maca > 50.0 && maca < 57.0, "MACA single stream = {maca:.2}");
    assert!(macaw > 43.0 && macaw < 51.0, "MACAW single stream = {macaw:.2}");
    assert!(maca > macaw, "MACA must beat MACAW on a clean channel");
    let overhead = (maca - macaw) / maca;
    assert!(
        overhead > 0.04 && overhead < 0.2,
        "DS+ACK overhead should be roughly the paper's ~8%, got {:.0}%",
        overhead * 100.0
    );
}

#[test]
fn table10_macaw_is_fair_within_the_congested_cell() {
    let macaw = figures::figure10(MacKind::Macaw, 10).run(DUR, WARM).unwrap();
    let c1 = [
        "P1-B1", "P2-B1", "P3-B1", "P4-B1", "B1-P1", "B1-P2", "B1-P3", "B1-P4",
    ];
    let j = macaw.jain_fairness_of(&c1);
    assert!(j > 0.9, "C1 streams must share fairly under MACAW, Jain = {j:.3}");
    // C2 must not be starved by the straddler, and the straddler itself
    // keeps most of its offered 32 pps.
    assert!(macaw.throughput("P5-B2") + macaw.throughput("B2-P5") > 3.0);
    assert!(macaw.throughput("P6-B3") > 20.0);
    let maca = figures::figure10(MacKind::Maca, 10).run(DUR, WARM).unwrap();
    assert!(
        maca.jain_fairness() < macaw.jain_fairness(),
        "MACA must be less fair than MACAW"
    );
}

#[test]
fn table11_macaw_shrinks_the_top_streams_share() {
    let arrive = SimTime::ZERO + SimDuration::from_secs(60);
    let share = |r: &RunReport| {
        let top = r
            .streams
            .iter()
            .map(|s| s.throughput_pps)
            .fold(0.0, f64::max);
        top / r.total_throughput()
    };
    // The top-stream share of a single run is noisy enough that the
    // MACA/MACAW comparison can flip sign on individual seeds, so assert
    // on the mean over a few independent replications instead.
    let seeds = [7u64, 11, 13];
    let mut maca_share = 0.0;
    let mut macaw_share = 0.0;
    let mut maca_jain = 0.0;
    let mut macaw_jain = 0.0;
    for seed in seeds {
        let maca = figures::figure11(MacKind::Maca, seed, arrive).run(DUR * 2, WARM).unwrap();
        let macaw = figures::figure11(MacKind::Macaw, seed, arrive).run(DUR * 2, WARM).unwrap();
        maca_share += share(&maca);
        macaw_share += share(&macaw);
        maca_jain += maca.jain_fairness();
        macaw_jain += macaw.jain_fairness();
    }
    let n = seeds.len() as f64;
    assert!(
        macaw_share / n < maca_share / n,
        "MACAW mean top-stream share ({:.3}) must be below MACA's ({:.3})",
        macaw_share / n,
        maca_share / n
    );
    assert!(macaw_jain / n > maca_jain / n);
}
